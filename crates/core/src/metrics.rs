//! Execution metrics — the observability vocabulary of the reproduction.
//!
//! The paper's argument is quantitative: MODGEMM wins because its Morton
//! layout and dynamic truncation reduce misses and padding overhead.
//! Every executor in the workspace therefore reports through one shared
//! vocabulary, the [`MetricsSink`] trait:
//!
//! * [`NoopSink`] — the zero-cost default. Its [`MetricsSink::ENABLED`]
//!   constant is `false`, so instrumented code paths skip even the
//!   `Instant::now()` calls; the product is bit-identical to an
//!   uninstrumented run (asserted by tests).
//! * [`CollectingSink`] — accumulates everything into an [`ExecMetrics`]
//!   snapshot: recursion depth taken, per-level wall time, modeled
//!   Strassen vs conventional flops (from [`crate::counts`]), peak
//!   workspace actually reserved, temporary allocations, padding
//!   overhead, the conversion/compute breakdown, and — when fed from a
//!   `modgemm-cachesim` traced run — cache hit/miss totals.
//!
//! Entry points accepting a sink: [`crate::exec::try_strassen_mul_with_sink`],
//! [`crate::parallel::try_strassen_mul_parallel_with_sink`], and
//! [`crate::gemm::try_modgemm_with_metrics`]. The baselines mirror them in
//! `modgemm-baselines::instrumented`.

use std::time::Duration;

use modgemm_mat::KernelKind;

use crate::gemm::GemmBreakdown;
use crate::schedule::Schedule;

/// Static facts about one planned executor invocation, recorded once per
/// top-level call (and once per sub-product when a rectangular problem is
/// split, §3.5 — the accumulating sink sums them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanFacts {
    /// Padded GEMM dimensions `(m, k, n)` the executor actually runs.
    pub padded: (usize, usize, usize),
    /// Morton recursion depth of the plan.
    pub depth: usize,
    /// Levels that take the Strassen step (the rest run conventionally).
    pub strassen_levels: usize,
    /// Innermost Strassen levels that run fused — pre-adds in packing,
    /// post-merges in the scatter epilogue, no S/T arena slots
    /// ([`crate::fuse`]). Always ≤ [`Self::strassen_levels`].
    pub fused_levels: usize,
    /// The *effective* schedule tier the staged levels interpret
    /// ([`crate::exec::ExecPolicy::sched`] — Boyer et al. memory tiers).
    pub schedule: Schedule,
    /// Modeled flops the executor performs
    /// ([`crate::counts::strassen_flops`] — exact, see its tests).
    pub flops: u64,
    /// Modeled flops a conventional multiply of the padded problem would
    /// perform ([`crate::counts::conventional_flops`]).
    pub conventional_flops: u64,
}

/// Cache-simulation totals (fed from `modgemm-cachesim` traced runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Accesses that hit in the (innermost) simulated cache.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheTotals {
    /// Miss ratio, or 0 when no accesses were recorded.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Counters from one work-stealing pool run, merged from the per-worker
/// metric shards at the join (see [`crate::pool`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers the run was scheduled across (calling thread included).
    pub workers: usize,
    /// DAG tasks executed, summed over workers.
    pub tasks_executed: u64,
    /// Tasks a worker popped from *another* worker's queue.
    pub steals: u64,
    /// Total time workers spent parked waiting for ready tasks.
    pub idle: Duration,
}

/// A point-in-time counter snapshot of one [`crate::service::GemmService`]
/// — admission, completion, rejection, and plan-cache behavior. Taken
/// with [`crate::service::GemmService::stats`]; counters are cumulative
/// since service construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the submission queue.
    pub submitted: u64,
    /// Requests a dispatcher admitted against the memory ledger and ran.
    pub admitted: u64,
    /// Requests that completed with `Ok`.
    pub completed: u64,
    /// Submissions rejected because the bounded queue was full
    /// ([`crate::GemmError::Overloaded`]).
    pub rejected_overload: u64,
    /// Submissions or queued requests rejected during shutdown
    /// ([`crate::GemmError::ShuttingDown`]).
    pub rejected_shutdown: u64,
    /// Requests that ended [`crate::GemmError::Cancelled`].
    pub cancelled: u64,
    /// Requests that ended [`crate::GemmError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Requests that ended in any other typed error (allocation failure,
    /// verification failure, worker panic, budget excess, bad dims, …).
    pub failed: u64,
    /// Requests currently waiting in the submission queue.
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub peak_queue_depth: u64,
    /// Plan-cache lookups served from the cache.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that compiled a new plan.
    pub plan_cache_misses: u64,
    /// Plans evicted by the cache's LRU policy.
    pub plan_cache_evictions: u64,
    /// Ledger bytes currently admitted (live request workspace).
    pub bytes_in_use: u64,
    /// Highest ledger occupancy observed.
    pub peak_bytes_in_use: u64,
}

impl ServiceStats {
    /// Requests that reached a terminal state (any outcome).
    pub fn finished(&self) -> u64 {
        self.completed
            + self.cancelled
            + self.deadline_exceeded
            + self.failed
            + self.rejected_shutdown
    }

    /// `rejected_overload / (submitted + rejected_overload)` — the
    /// admission-control rejection rate. `0.0` when nothing was offered.
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.submitted + self.rejected_overload;
        if offered == 0 {
            0.0
        } else {
            self.rejected_overload as f64 / offered as f64
        }
    }

    /// Plan-cache hit rate over all lookups. `0.0` before any lookup.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let lookups = self.plan_cache_hits + self.plan_cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / lookups as f64
        }
    }
}

/// The event vocabulary every instrumented executor reports through.
///
/// All methods have empty default bodies, so a sink implements only what
/// it cares about. Executors are generic over the sink and consult
/// [`Self::ENABLED`] before doing instrumentation-only work (timing
/// syscalls in particular), so the [`NoopSink`] paths compile to exactly
/// the uninstrumented code.
pub trait MetricsSink {
    /// `false` only for sinks that discard everything; lets executors
    /// skip instrumentation-only work at compile time.
    const ENABLED: bool = true;

    /// Logical (unpadded) problem dimensions `(m, k, n)`, recorded once
    /// at the top of the GEMM pipeline.
    fn record_problem(&mut self, m: usize, k: usize, n: usize) {
        let _ = (m, k, n);
    }

    /// Plan-level facts of one executor invocation.
    fn record_plan(&mut self, facts: PlanFacts) {
        let _ = facts;
    }

    /// Strassen workspace reserved for one invocation (the quantity
    /// [`crate::config::MemoryBudget`] caps).
    fn record_workspace(&mut self, elems: usize, bytes: usize) {
        let _ = (elems, bytes);
    }

    /// *Measured* workspace high-water mark of one invocation — the
    /// arena elements the interpreter actually consumed, as opposed to
    /// the closed-form reservation of
    /// [`MetricsSink::record_workspace`]. A debug assertion in the
    /// executors pins the two equal, so any schedule whose closed form
    /// under-counts fails loudly in tests.
    fn record_workspace_used(&mut self, elems: usize, bytes: usize) {
        let _ = (elems, bytes);
    }

    /// `count` temporary buffers totalling `elems` elements (`bytes`
    /// bytes) were allocated outside the pre-reserved workspace (the
    /// parallel executor's self-allocated slab, cold [`crate::GemmContext`]
    /// buffer growth, internal scratch, …). A planned execution on a warm
    /// context records nothing here — that is the "allocation-free hot
    /// path" acceptance criterion (`temp_alloc_bytes == 0`).
    fn record_temp_allocs(&mut self, count: u64, elems: u64, bytes: u64) {
        let _ = (count, elems, bytes);
    }

    /// One [`crate::GemmPlan`] was compiled (truncation search, layout
    /// tree, flattened schedule, arena offsets). The one-shot wrappers
    /// build a plan per call; a reusing caller records this once.
    fn record_plan_built(&mut self) {}

    /// One execution of a prepared plan, whose workspace arena spans
    /// `arena_bytes` bytes. The ratio `plan_executions / plans_built`
    /// is the amortization factor the plan/execute split buys.
    fn record_plan_execution(&mut self, arena_bytes: u64) {
        let _ = arena_bytes;
    }

    /// Whether a tuning profile entry (or forced [`crate::TunedChoice`])
    /// drove the executed plan's selection (`true`), or the static
    /// heuristics alone did (`false`). Recorded once per plan execution,
    /// alongside [`MetricsSink::record_plan_execution`].
    fn record_tuning(&mut self, profile_hit: bool) {
        let _ = profile_hit;
    }

    /// Wall time attributed exclusively to recursion level `level`
    /// (additions at Strassen nodes; the whole conventional subtree at
    /// the handover level).
    fn record_level_time(&mut self, level: usize, elapsed: Duration) {
        let _ = (level, elapsed);
    }

    /// The conversion/compute wall-clock split of one GEMM call.
    fn record_breakdown(&mut self, bd: &GemmBreakdown) {
        let _ = bd;
    }

    /// Cache hit/miss totals from a simulated run.
    fn record_cache(&mut self, hits: u64, misses: u64) {
        let _ = (hits, misses);
    }

    /// The concrete leaf kernel an executor ran with. `Auto` policies
    /// resolve before reaching the sink, so recorded kinds are always
    /// concrete.
    fn record_kernel(&mut self, kernel: KernelKind) {
        let _ = kernel;
    }

    /// Modeled bytes copied into packing buffers by one invocation
    /// ([`crate::counts::packed_bytes`]; zero for non-packing kernels).
    fn record_bytes_packed(&mut self, bytes: u64) {
        let _ = bytes;
    }

    /// Work-stealing pool counters of one parallel execution (merged from
    /// the per-worker shards at the join). Serial executions record
    /// nothing here.
    fn record_pool(&mut self, stats: PoolStats) {
        let _ = stats;
    }

    /// One batched execution ([`crate::BatchPlan`]): `items` GEMMs ran
    /// with an in-flight window of `window` slots, and `overlap_fraction`
    /// of the conversion/epilogue wall time ran while at least one
    /// compute task was in flight (0 for the serial per-item fallback,
    /// whose window is 1 by construction).
    fn record_batch(&mut self, items: usize, window: usize, overlap_fraction: f64) {
        let _ = (items, window, overlap_fraction);
    }
}

/// The zero-cost default sink: ignores everything, and its
/// [`MetricsSink::ENABLED`] constant lets executors compile the
/// instrumentation out entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    const ENABLED: bool = false;
}

/// One executed-metrics snapshot — everything a [`CollectingSink`]
/// gathered over one or more instrumented calls.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecMetrics {
    /// Logical problem dims `(m, k, n)` (first recorded call).
    pub problem: Option<(usize, usize, usize)>,
    /// Executor invocations observed (> 1 when a rectangular problem was
    /// split into sub-products).
    pub plans: u64,
    /// Deepest Morton recursion depth across plans.
    pub depth: usize,
    /// Deepest count of levels that took the Strassen step.
    pub strassen_levels: usize,
    /// Deepest count of fused Strassen levels across plans (operand
    /// fusion, [`crate::fuse`]).
    pub fused_levels: usize,
    /// Modeled flops executed, summed across plans.
    pub flops: u64,
    /// Modeled conventional-cost flops of the same padded problems.
    pub conventional_flops: u64,
    /// Sum over plans of the padded volume `m·k·n` (for
    /// [`Self::padding_ratio`]).
    pub padded_volume: u128,
    /// Peak Strassen workspace reserved by any single invocation, in
    /// elements.
    pub peak_workspace_elems: usize,
    /// Peak Strassen workspace in bytes.
    pub peak_workspace_bytes: usize,
    /// Peak *measured* workspace consumption (arena high-water mark) of
    /// any single invocation, in elements. Equals the reservation on
    /// serial planned runs; the executors debug-assert the match.
    pub workspace_used_elems: usize,
    /// Peak measured workspace consumption in bytes.
    pub workspace_used_bytes: usize,
    /// The effective schedule tier of the most recent plan (Boyer et
    /// al. memory tiers; `None` until an executor reports a plan).
    pub schedule_selected: Option<Schedule>,
    /// Temporary buffers allocated outside the workspace arena.
    pub temp_allocations: u64,
    /// Total elements across those temporaries.
    pub temp_alloc_elems: u64,
    /// Total bytes across those temporaries. Zero on a planned execution
    /// with a warm [`crate::GemmContext`] — the allocation-free hot path.
    pub temp_alloc_bytes: u64,
    /// [`crate::GemmPlan`]s compiled (one per call through the one-shot
    /// wrappers; once for a reusing caller).
    pub plans_built: u64,
    /// Executions of prepared plans. `plan_executions / plans_built` is
    /// the amortization factor of plan reuse.
    pub plan_executions: u64,
    /// Executions whose plan selection was driven by a tuning profile
    /// (see [`crate::tune`]); `plan_executions - profile_hits` ran on the
    /// static heuristics.
    pub profile_hits: u64,
    /// Peak workspace-arena span of any executed plan, in bytes.
    pub arena_bytes: u64,
    /// Exclusive wall time per recursion level (index = level; grown on
    /// demand).
    pub level_times: Vec<Duration>,
    /// Accumulated conversion/compute breakdown.
    pub breakdown: GemmBreakdown,
    /// Cache totals, present only when a traced run reported them.
    pub cache: Option<CacheTotals>,
    /// The concrete leaf kernel that ran (last recorded invocation;
    /// `None` until an executor reports one). Never [`KernelKind::Auto`]:
    /// auto-selection resolves at plan time.
    pub kernel_selected: Option<KernelKind>,
    /// Modeled bytes copied into packing buffers, summed across
    /// invocations ([`crate::counts::packed_bytes`]).
    pub bytes_packed: u64,
    /// Work-stealing pool counters, present only when an execution ran on
    /// the pool. Counters accumulate across runs; `workers` keeps the
    /// maximum.
    pub pool: Option<PoolStats>,
    /// GEMMs executed through batched entry points ([`crate::BatchPlan`]),
    /// summed across batches.
    pub batch_items: u64,
    /// Largest in-flight window any batched execution ran with (1 = the
    /// serial per-item fallback).
    pub batch_window: usize,
    /// Conversion/compute overlap of the most recent batch: the fraction
    /// of conversion/epilogue wall time that ran concurrently with at
    /// least one compute task. 0 when nothing batched ran (or nothing
    /// overlapped).
    pub conversion_overlap_fraction: f64,
}

impl ExecMetrics {
    /// Fresh, empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recursion depth actually taken by the Strassen step (alias of
    /// [`Self::strassen_levels`], the ISSUE vocabulary).
    pub fn depth_taken(&self) -> usize {
        self.strassen_levels
    }

    /// `padded volume / logical volume` — the padding overhead the
    /// paper's dynamic truncation minimizes (Figure 2). `1.0` means no
    /// padding; returns 0 when no problem was recorded.
    pub fn padding_ratio(&self) -> f64 {
        match self.problem {
            Some((m, k, n)) if m * k * n > 0 => {
                self.padded_volume as f64 / (m as u128 * k as u128 * n as u128) as f64
            }
            _ => 0.0,
        }
    }

    /// Modeled arithmetic saving of the Strassen recursion:
    /// `flops / conventional_flops` (< 1 when the recursion saves work).
    pub fn flop_ratio(&self) -> f64 {
        if self.conventional_flops == 0 {
            0.0
        } else {
            self.flops as f64 / self.conventional_flops as f64
        }
    }

    /// Effective flops of the *logical* problem (`2·m·k·n`) — the
    /// conventional-equivalent count benchmarks normalize by, so
    /// Strassen's savings show up as higher effective GFLOP/s rather
    /// than a different denominator.
    pub fn effective_flops(&self) -> u64 {
        match self.problem {
            Some((m, k, n)) => crate::counts::conventional_flops(m, k, n),
            None => 0,
        }
    }

    /// Effective GFLOP/s for this problem completed in `elapsed`.
    pub fn effective_gflops(&self, elapsed: Duration) -> f64 {
        let s = elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.effective_flops() as f64 / s / 1e9
        }
    }

    /// Total exclusive per-level time (≈ compute time when instrumented
    /// through the serial executor).
    pub fn level_time_total(&self) -> Duration {
        self.level_times.iter().sum()
    }
}

/// A [`MetricsSink`] that accumulates every event into an
/// [`ExecMetrics`]. Repeated records accumulate (sums / maxima), so one
/// sink can observe a whole rectangular-split pipeline or a batch of
/// calls.
#[derive(Clone, Debug, Default)]
pub struct CollectingSink {
    /// The snapshot accumulated so far.
    pub metrics: ExecMetrics,
}

impl CollectingSink {
    /// A sink with an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the snapshot.
    pub fn into_metrics(self) -> ExecMetrics {
        self.metrics
    }
}

impl MetricsSink for CollectingSink {
    fn record_problem(&mut self, m: usize, k: usize, n: usize) {
        if self.metrics.problem.is_none() {
            self.metrics.problem = Some((m, k, n));
        }
    }

    fn record_plan(&mut self, facts: PlanFacts) {
        let m = &mut self.metrics;
        m.plans += 1;
        m.depth = m.depth.max(facts.depth);
        m.strassen_levels = m.strassen_levels.max(facts.strassen_levels);
        m.fused_levels = m.fused_levels.max(facts.fused_levels);
        m.flops += facts.flops;
        m.conventional_flops += facts.conventional_flops;
        m.schedule_selected = Some(facts.schedule);
        let (pm, pk, pn) = facts.padded;
        m.padded_volume += pm as u128 * pk as u128 * pn as u128;
    }

    fn record_workspace(&mut self, elems: usize, bytes: usize) {
        let m = &mut self.metrics;
        m.peak_workspace_elems = m.peak_workspace_elems.max(elems);
        m.peak_workspace_bytes = m.peak_workspace_bytes.max(bytes);
    }

    fn record_workspace_used(&mut self, elems: usize, bytes: usize) {
        let m = &mut self.metrics;
        m.workspace_used_elems = m.workspace_used_elems.max(elems);
        m.workspace_used_bytes = m.workspace_used_bytes.max(bytes);
    }

    fn record_temp_allocs(&mut self, count: u64, elems: u64, bytes: u64) {
        self.metrics.temp_allocations += count;
        self.metrics.temp_alloc_elems += elems;
        self.metrics.temp_alloc_bytes += bytes;
    }

    fn record_plan_built(&mut self) {
        self.metrics.plans_built += 1;
    }

    fn record_plan_execution(&mut self, arena_bytes: u64) {
        self.metrics.plan_executions += 1;
        self.metrics.arena_bytes = self.metrics.arena_bytes.max(arena_bytes);
    }

    fn record_tuning(&mut self, profile_hit: bool) {
        if profile_hit {
            self.metrics.profile_hits += 1;
        }
    }

    fn record_level_time(&mut self, level: usize, elapsed: Duration) {
        let lt = &mut self.metrics.level_times;
        if lt.len() <= level {
            lt.resize(level + 1, Duration::ZERO);
        }
        lt[level] += elapsed;
    }

    fn record_breakdown(&mut self, bd: &GemmBreakdown) {
        self.metrics.breakdown.convert_in += bd.convert_in;
        self.metrics.breakdown.compute += bd.compute;
        self.metrics.breakdown.convert_out += bd.convert_out;
    }

    fn record_cache(&mut self, hits: u64, misses: u64) {
        let c = self.metrics.cache.get_or_insert(CacheTotals::default());
        c.hits += hits;
        c.misses += misses;
    }

    fn record_kernel(&mut self, kernel: KernelKind) {
        self.metrics.kernel_selected = Some(kernel);
    }

    fn record_bytes_packed(&mut self, bytes: u64) {
        self.metrics.bytes_packed += bytes;
    }

    fn record_pool(&mut self, stats: PoolStats) {
        let p = self.metrics.pool.get_or_insert(PoolStats::default());
        p.workers = p.workers.max(stats.workers);
        p.tasks_executed += stats.tasks_executed;
        p.steals += stats.steals;
        p.idle += stats.idle;
    }

    fn record_batch(&mut self, items: usize, window: usize, overlap_fraction: f64) {
        self.metrics.batch_items += items as u64;
        self.metrics.batch_window = self.metrics.batch_window.max(window);
        self.metrics.conversion_overlap_fraction = overlap_fraction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time pins: NoopSink must stay the zero-cost default and
    // CollectingSink the enabled one.
    const _: () = assert!(!NoopSink::ENABLED);
    const _: () = assert!(CollectingSink::ENABLED);

    #[test]
    fn collecting_sink_accumulates() {
        let mut sink = CollectingSink::new();
        sink.record_problem(10, 20, 30);
        sink.record_problem(99, 99, 99); // ignored: first wins
        sink.record_plan(PlanFacts {
            padded: (16, 32, 32),
            depth: 2,
            strassen_levels: 2,
            fused_levels: 1,
            schedule: Schedule::Standard,
            flops: 100,
            conventional_flops: 200,
        });
        sink.record_plan(PlanFacts {
            padded: (16, 16, 16),
            depth: 1,
            strassen_levels: 1,
            fused_levels: 0,
            schedule: Schedule::LowMem, // last wins
            flops: 10,
            conventional_flops: 20,
        });
        sink.record_workspace(50, 400);
        sink.record_workspace(30, 240);
        sink.record_workspace_used(40, 320);
        sink.record_workspace_used(20, 160); // peak keeps the max
        sink.record_temp_allocs(3, 90, 720);
        sink.record_plan_built();
        sink.record_plan_execution(4096);
        sink.record_plan_execution(2048); // arena_bytes keeps the peak
        sink.record_level_time(1, Duration::from_millis(5));
        sink.record_level_time(1, Duration::from_millis(5));
        sink.record_level_time(0, Duration::from_millis(1));
        sink.record_cache(70, 30);
        sink.record_kernel(KernelKind::Blocked);
        sink.record_kernel(KernelKind::Packed); // last wins
        sink.record_bytes_packed(1000);
        sink.record_bytes_packed(24); // accumulates
        sink.record_pool(PoolStats {
            workers: 4,
            tasks_executed: 10,
            steals: 2,
            idle: Duration::from_millis(3),
        });
        sink.record_pool(PoolStats {
            workers: 2, // workers keeps the max, counters accumulate
            tasks_executed: 5,
            steals: 1,
            idle: Duration::from_millis(1),
        });

        let m = sink.into_metrics();
        assert_eq!(m.problem, Some((10, 20, 30)));
        assert_eq!(m.plans, 2);
        assert_eq!(m.depth, 2);
        assert_eq!(m.strassen_levels, 2);
        assert_eq!(m.fused_levels, 1);
        assert_eq!(m.flops, 110);
        assert_eq!(m.conventional_flops, 220);
        assert_eq!(m.padded_volume, (16 * 32 * 32 + 16 * 16 * 16) as u128);
        assert_eq!(m.peak_workspace_elems, 50);
        assert_eq!(m.peak_workspace_bytes, 400);
        assert_eq!(m.workspace_used_elems, 40);
        assert_eq!(m.workspace_used_bytes, 320);
        assert_eq!(m.schedule_selected, Some(Schedule::LowMem));
        assert_eq!(m.temp_allocations, 3);
        assert_eq!(m.temp_alloc_elems, 90);
        assert_eq!(m.temp_alloc_bytes, 720);
        assert_eq!(m.plans_built, 1);
        assert_eq!(m.plan_executions, 2);
        assert_eq!(m.arena_bytes, 4096);
        assert_eq!(m.level_times.len(), 2);
        assert_eq!(m.level_times[1], Duration::from_millis(10));
        assert_eq!(m.flop_ratio(), 0.5);
        assert_eq!(m.cache.unwrap().miss_ratio(), 0.3);
        assert!(m.padding_ratio() > 1.0);
        assert_eq!(m.effective_flops(), 2 * 10 * 20 * 30);
        assert_eq!(m.kernel_selected, Some(KernelKind::Packed));
        assert_eq!(m.bytes_packed, 1024);
        let pool = m.pool.unwrap();
        assert_eq!(pool.workers, 4);
        assert_eq!(pool.tasks_executed, 15);
        assert_eq!(pool.steals, 3);
        assert_eq!(pool.idle, Duration::from_millis(4));
    }

    #[test]
    fn empty_metrics_are_benign() {
        let m = ExecMetrics::new();
        assert_eq!(m.padding_ratio(), 0.0);
        assert_eq!(m.flop_ratio(), 0.0);
        assert_eq!(m.effective_flops(), 0);
        assert_eq!(m.level_time_total(), Duration::ZERO);
        assert_eq!(m.effective_gflops(Duration::ZERO), 0.0);
    }
}
