//! The complete error taxonomy of the fault-tolerant GEMM pipeline.
//!
//! Reference BLAS never aborts the host process on an illegal argument —
//! it reports and returns. Strassen-Winograd adds failure modes of its
//! own: large workspace allocations (Boyer et al., arXiv:0707.2347 study
//! exactly this extra-memory axis), weaker numerical error bounds than
//! the conventional algorithm (Huang et al., arXiv:1605.01078), and, in
//! this implementation, worker threads whose panics must not poison the
//! caller. Every fallible entry point (`try_gemm`, `try_dgemm`,
//! [`crate::gemm::try_modgemm`], [`crate::exec::try_strassen_mul`], …)
//! reports through [`GemmError`]; the panicking entry points are thin
//! wrappers that unwrap it.
//!
//! ```
//! use modgemm_core::{GemmError, Operand};
//!
//! let e = GemmError::WorkspaceTooSmall { needed: 64, got: 10 };
//! assert!(e.to_string().contains("workspace too small"));
//! let e = GemmError::BadLeadingDim { operand: Operand::A, ld: 9, min: 10 };
//! assert!(e.to_string().contains("leading dimension"));
//! ```

use std::fmt;

/// Which GEMM operand an argument error refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// The left operand `A`.
    A,
    /// The right operand `B`.
    B,
    /// The output `C`.
    C,
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::A => write!(f, "A"),
            Operand::B => write!(f, "B"),
            Operand::C => write!(f, "C"),
        }
    }
}

/// Everything that can go wrong in a MODGEMM call, as data.
///
/// The taxonomy covers the reference-BLAS illegal-argument conditions
/// (dimensions, leading dimensions, slice lengths), the Strassen-specific
/// resource conditions (workspace, allocation), configuration misuse, and
/// the two runtime-quality conditions (non-finite operands under
/// [`crate::config::NonFinitePolicy::Reject`], and a failed
/// Freivalds verification after the conventional retry).
///
/// Errors carry the numbers needed to act on them:
///
/// ```
/// use modgemm_core::blas::try_dgemm;
/// use modgemm_core::{GemmError, ModgemmConfig, Operand};
/// use modgemm_mat::Op;
///
/// let cfg = ModgemmConfig::default();
/// let (a, b) = (vec![0.0; 12], vec![0.0; 8]);
/// let mut c = vec![0.0; 5]; // needs 3×2 = 6 elements at ldc = 3
/// match try_dgemm(Op::NoTrans, Op::NoTrans, 3, 2, 4, 1.0,
///                 &a, 3, &b, 4, 0.0, &mut c, 3, &cfg) {
///     Err(GemmError::SliceTooShort { operand: Operand::C, needed, got }) => {
///         assert_eq!((needed, got), (6, 5));
///     }
///     other => panic!("expected a typed length error, got {other:?}"),
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GemmError {
    /// `op(A).cols != op(B).rows`.
    InnerDimMismatch {
        /// Columns of `op(A)`.
        a_cols: usize,
        /// Rows of `op(B)`.
        b_rows: usize,
    },
    /// `C` is not `op(A).rows × op(B).cols`.
    OutputDimMismatch {
        /// Required dimensions.
        expected: (usize, usize),
        /// Actual dimensions of `C`.
        got: (usize, usize),
    },
    /// A raw-slice operand's leading dimension is smaller than its stored
    /// row count (columns would overlap).
    BadLeadingDim {
        /// Which operand.
        operand: Operand,
        /// The offending leading dimension.
        ld: usize,
        /// The minimum legal value (the stored row count, at least 1).
        min: usize,
    },
    /// A raw-slice operand is too short for its `(rows, cols, ld)` window.
    SliceTooShort {
        /// Which operand.
        operand: Operand,
        /// Required length in elements.
        needed: usize,
        /// Actual slice length.
        got: usize,
    },
    /// The provided Strassen workspace is smaller than
    /// [`crate::exec::workspace_len`] requires.
    WorkspaceTooSmall {
        /// Required length in elements.
        needed: usize,
        /// Provided length.
        got: usize,
    },
    /// A Morton operand buffer does not match its layout's length.
    BufferLenMismatch {
        /// Which operand.
        operand: Operand,
        /// Required length in elements (`layout.len()`).
        needed: usize,
        /// Provided length.
        got: usize,
    },
    /// An internal buffer could not be allocated. Surfaces `Vec`'s
    /// `try_reserve` failure instead of aborting the process.
    Allocation {
        /// The allocation size that failed, in elements.
        elements: usize,
    },
    /// The [`crate::config::ModgemmConfig`] is self-contradictory.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Operands handed to a planned execution do not match the `m × k × n`
    /// shape the [`crate::plan::GemmPlan`] was compiled for.
    PlanShapeMismatch {
        /// The problem shape the plan was built for.
        planned: (usize, usize, usize),
        /// The shape implied by the operands of this call.
        got: (usize, usize, usize),
    },
    /// An operand contains a non-finite value and the configured
    /// [`crate::config::NonFinitePolicy`] is `Reject`.
    NonFiniteInput {
        /// Which operand.
        operand: Operand,
    },
    /// The batched interface was called with batches of differing lengths.
    BatchLenMismatch {
        /// Length of the `A` batch.
        a: usize,
        /// Length of the `B` batch.
        b: usize,
        /// Length of the `C` batch.
        c: usize,
    },
    /// One item of a batched call failed; `index` identifies the item and
    /// `source` carries the underlying error. Batched entry points
    /// validate every item's shape **before** touching any output, so a
    /// shape error with index `i` guarantees `c_batch[..i]` (and everything
    /// else) is unmodified; execution errors mean items `..index` completed.
    BatchItem {
        /// Zero-based position of the failing item in the batch.
        index: usize,
        /// The underlying per-item error.
        source: Box<GemmError>,
    },
    /// A strided batch's `C` windows overlap: `stride_c` is smaller than
    /// one item's `(m, n, ldc)` footprint, so items would race on the same
    /// output elements. (`A`/`B` strides may alias or broadcast freely —
    /// they are read-only.)
    BatchOverlap {
        /// The offending output stride in elements.
        stride: usize,
        /// The minimum legal stride: `required_len(m, n, ldc)`.
        needed: usize,
    },
    /// The Freivalds check failed for the fast result **and** for the
    /// conventional recomputation — the environment is producing wrong
    /// arithmetic (or the verifier tolerance is violated by design).
    VerificationFailed {
        /// Number of Freivalds rounds that were run.
        rounds: u32,
    },
    /// A parallel worker panicked; the panic was contained and converted
    /// instead of poisoning the join.
    WorkerPanic {
        /// Panic payload when it was a string, or a placeholder.
        message: String,
    },
    /// The [`crate::service::GemmService`] submission queue is full —
    /// typed backpressure instead of unbounded growth. Resubmit later or
    /// shed load.
    Overloaded {
        /// The bounded queue's capacity at the time of rejection.
        capacity: usize,
    },
    /// The request's deadline passed before the result was produced —
    /// either while queued (rejected before any allocation) or mid-flight
    /// (the task DAG was drained cooperatively).
    DeadlineExceeded,
    /// The request was cancelled by its caller (via
    /// [`crate::pool::CancelToken::cancel`]); the in-flight task DAG was
    /// drained cooperatively and the context remains reusable.
    Cancelled,
    /// The service is shutting down and rejects new submissions; requests
    /// still queued when the drain could not run also resolve to this.
    ShuttingDown,
    /// The request can never be admitted: its memory estimate exceeds the
    /// service's whole [`crate::config::MemoryBudget`] ledger.
    BudgetExceeded {
        /// Bytes the request would need at peak.
        needed_bytes: usize,
        /// The ledger's total budget in bytes.
        budget_bytes: usize,
    },
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemmError::InnerDimMismatch { a_cols, b_rows } => write!(
                f,
                "inner dimensions differ: op(A) has {a_cols} columns, op(B) has {b_rows} rows"
            ),
            GemmError::OutputDimMismatch { expected, got } => {
                write!(f, "C must be {}x{}, got {}x{}", expected.0, expected.1, got.0, got.1)
            }
            GemmError::BadLeadingDim { operand, ld, min } => {
                write!(f, "leading dimension {ld} of {operand} < rows {min}")
            }
            GemmError::SliceTooShort { operand, needed, got } => {
                write!(f, "slice for {operand} too short: need {needed} elements, got {got}")
            }
            GemmError::WorkspaceTooSmall { needed, got } => {
                write!(f, "workspace too small: need {needed} elements, got {got}")
            }
            GemmError::BufferLenMismatch { operand, needed, got } => {
                write!(f, "{operand} buffer length mismatch: layout needs {needed}, got {got}")
            }
            GemmError::Allocation { elements } => {
                write!(f, "allocation of {elements} elements failed")
            }
            GemmError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            GemmError::PlanShapeMismatch { planned, got } => write!(
                f,
                "plan compiled for {}x{}x{} cannot execute a {}x{}x{} problem",
                planned.0, planned.1, planned.2, got.0, got.1, got.2
            ),
            GemmError::NonFiniteInput { operand } => {
                write!(f, "operand {operand} contains a non-finite value")
            }
            GemmError::BatchLenMismatch { a, b, c } => {
                write!(f, "batch length mismatch: |A| = {a}, |B| = {b}, |C| = {c}")
            }
            GemmError::BatchItem { index, source } => {
                write!(f, "batch item {index}: {source}")
            }
            GemmError::BatchOverlap { stride, needed } => {
                write!(f, "batch C windows overlap: stride {stride} < item footprint {needed}")
            }
            GemmError::VerificationFailed { rounds } => write!(
                f,
                "result failed {rounds}-round Freivalds verification even after conventional retry"
            ),
            GemmError::WorkerPanic { message } => {
                write!(f, "parallel worker panicked: {message}")
            }
            GemmError::Overloaded { capacity } => {
                write!(f, "service overloaded: submission queue at capacity {capacity}")
            }
            GemmError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            GemmError::Cancelled => write!(f, "request cancelled"),
            GemmError::ShuttingDown => {
                write!(f, "service is shutting down and rejects new submissions")
            }
            GemmError::BudgetExceeded { needed_bytes, budget_bytes } => write!(
                f,
                "request needs {needed_bytes} bytes but the service memory budget is only \
                 {budget_bytes} bytes"
            ),
        }
    }
}

impl std::error::Error for GemmError {}

/// Allocates a zero-filled `Vec` of `len` elements, surfacing allocation
/// failure as [`GemmError::Allocation`] instead of aborting.
pub(crate) fn try_zeroed_vec<S: modgemm_mat::Scalar>(len: usize) -> Result<Vec<S>, GemmError> {
    crate::faults::check_alloc(len)?;
    let mut v: Vec<S> = Vec::new();
    v.try_reserve_exact(len).map_err(|_| GemmError::Allocation { elements: len })?;
    v.resize(len, S::ZERO);
    Ok(v)
}

/// Grows `v` to at least `len` elements (zero-filling new space),
/// surfacing allocation failure as [`GemmError::Allocation`].
pub(crate) fn try_grow<S: modgemm_mat::Scalar>(
    v: &mut Vec<S>,
    len: usize,
) -> Result<&mut [S], GemmError> {
    if v.len() < len {
        crate::faults::check_alloc(len)?;
        let extra = len - v.len();
        v.try_reserve(extra).map_err(|_| GemmError::Allocation { elements: len })?;
        v.resize(len, S::ZERO);
    }
    Ok(&mut v[..len])
}

/// Renders a `catch_unwind` payload as a string for
/// [`GemmError::WorkerPanic`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_the_legacy_substrings() {
        // The panicking wrappers format these errors; keep the substrings
        // older should_panic tests and downstream log-scrapers match on.
        let cases: [(GemmError, &str); 13] = [
            (GemmError::InnerDimMismatch { a_cols: 5, b_rows: 6 }, "inner dimensions"),
            (GemmError::OutputDimMismatch { expected: (4, 3), got: (4, 4) }, "C must be 4x3"),
            (GemmError::BadLeadingDim { operand: Operand::A, ld: 9, min: 10 }, "leading dimension"),
            (GemmError::SliceTooShort { operand: Operand::B, needed: 100, got: 9 }, "too short"),
            (GemmError::WorkspaceTooSmall { needed: 64, got: 10 }, "workspace too small"),
            (
                GemmError::BufferLenMismatch { operand: Operand::A, needed: 64, got: 63 },
                "A buffer length mismatch",
            ),
            (
                GemmError::BatchItem { index: 3, source: Box::new(GemmError::Cancelled) },
                "batch item 3",
            ),
            (GemmError::BatchOverlap { stride: 5, needed: 6 }, "overlap"),
            (GemmError::Overloaded { capacity: 8 }, "capacity 8"),
            (GemmError::DeadlineExceeded, "deadline"),
            (GemmError::Cancelled, "cancelled"),
            (GemmError::ShuttingDown, "shutting down"),
            (GemmError::BudgetExceeded { needed_bytes: 100, budget_bytes: 10 }, "memory budget"),
        ];
        for (e, sub) in cases {
            assert!(e.to_string().contains(sub), "{e} lacks {sub:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn take(_: &dyn std::error::Error) {}
        take(&GemmError::Allocation { elements: 1 });
    }

    #[test]
    fn try_zeroed_vec_allocates_and_zeroes() {
        let v: Vec<f64> = try_zeroed_vec(17).unwrap();
        assert_eq!(v.len(), 17);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn try_grow_only_grows() {
        let mut v: Vec<i64> = vec![7; 4];
        {
            let s = try_grow(&mut v, 8).unwrap();
            assert_eq!(s.len(), 8);
            assert_eq!(&s[..4], &[7, 7, 7, 7]);
            assert_eq!(&s[4..], &[0, 0, 0, 0]);
        }
        let s = try_grow(&mut v, 2).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn panic_messages_extracted() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&42i32), "non-string panic payload");
    }
}
