//! Handling of highly rectangular operands (§3.5, Figure 4).
//!
//! The three GEMM dimensions must share one recursion depth, so each must
//! admit a tile in the admissible range at that depth. With the paper's
//! range `[16, 64]` this holds whenever the dimensions are within a factor
//! of `64/16 = 4` of one another; a *wide* or *lean* operand beyond that
//! ratio makes the feasible-depth sets disjoint (the paper's
//! 1024×256-with-fixed-tiles example).
//!
//! The fix is the paper's: "the matrix is divided into submatrices such
//! that all submatrices require the same depth of recursion unfolding for
//! both dimensions. The matrix product is reconstructed in terms of the
//! submatrix products." We implement this compositionally: whenever no
//! shared depth exists, the *largest* dimension is halved —
//!
//! * an `m`-split partitions `op(A)` and `C` into top/bottom blocks
//!   (two independent products),
//! * an `n`-split partitions `op(B)` and `C` into left/right blocks,
//! * a `k`-split partitions `op(A)` into left/right and `op(B)` into
//!   top/bottom, and *accumulates*: `C ← α·A₁B₁ + β·C`, then
//!   `C ← α·A₂B₂ + 1·C` —
//!
//! and the entry point re-plans each half, recursing further if needed.
//! All nine wide/lean/well-behaved combinations of the paper's taxonomy
//! reduce to sequences of these three splits.

use modgemm_mat::view::{MatMut, MatRef, Op};
use modgemm_mat::Scalar;
use modgemm_morton::tiling::TileRange;

use crate::config::ModgemmConfig;
use crate::error::GemmError;
use crate::gemm::{try_modgemm_with_metrics, GemmBreakdown, GemmContext};
use crate::metrics::MetricsSink;

/// The paper's shape taxonomy for an operand (§3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Columns-to-rows ratio exceeds the desired ratio.
    Wide,
    /// Rows-to-columns ratio exceeds the desired ratio.
    Lean,
    /// Both ratios within bounds.
    WellBehaved,
}

/// Classifies a `rows × cols` operand against the admissible aspect
/// ratio (`range.max / range.min` for the configured tile range).
pub fn classify(rows: usize, cols: usize, range: TileRange) -> Shape {
    let ratio = (range.max / range.min).max(1);
    if cols > rows * ratio {
        Shape::Wide
    } else if rows > cols * ratio {
        Shape::Lean
    } else {
        Shape::WellBehaved
    }
}

/// Window of the stored matrix corresponding to
/// `op(X)[i..i+nr, j..j+nc]`.
pub(crate) fn op_sub<'a, S: Scalar>(
    x: MatRef<'a, S>,
    op: Op,
    i: usize,
    j: usize,
    nr: usize,
    nc: usize,
) -> MatRef<'a, S> {
    match op {
        Op::NoTrans => x.submatrix(i, j, nr, nc),
        Op::Trans => x.submatrix(j, i, nc, nr),
    }
}

/// Splits one over-rectangular GEMM along its largest dimension and
/// recurses through [`try_modgemm_with_metrics`] (which re-plans each
/// half). Each sub-product reports its plan and timings through
/// `metrics`; breakdowns of the leaf executions are fed to
/// `on_breakdown`. The first error aborts the remaining halves (`C` is
/// then partial garbage, like any failed GEMM).
#[allow(clippy::too_many_arguments)]
pub(crate) fn split_gemm<S: Scalar, K: MetricsSink>(
    alpha: S,
    op_a: Op,
    a: MatRef<'_, S>,
    op_b: Op,
    b: MatRef<'_, S>,
    beta: S,
    c: MatMut<'_, S>,
    cfg: &ModgemmConfig,
    ctx: &mut GemmContext<S>,
    metrics: &mut K,
    on_breakdown: &mut dyn FnMut(GemmBreakdown),
) -> Result<(), GemmError> {
    let (m, k) = op_a.apply_dims(a.rows(), a.cols());
    let (_, n) = op_b.apply_dims(b.rows(), b.cols());
    debug_assert!(m.max(k).max(n) >= 2, "split on degenerate problem");

    let run = |alpha: S,
               a: MatRef<'_, S>,
               b: MatRef<'_, S>,
               beta: S,
               c: MatMut<'_, S>,
               ctx: &mut GemmContext<S>,
               metrics: &mut K|
     -> Result<GemmBreakdown, GemmError> {
        try_modgemm_with_metrics(alpha, op_a, a, op_b, b, beta, c, cfg, ctx, metrics)
    };

    if m >= k && m >= n {
        // Lean A: split op(A) and C into top/bottom halves.
        let m1 = m / 2;
        let a1 = op_sub(a, op_a, 0, 0, m1, k);
        let a2 = op_sub(a, op_a, m1, 0, m - m1, k);
        let (c1, _, c2, _) = c.split_quad(m1, n);
        on_breakdown(run(alpha, a1, b, beta, c1, ctx, metrics)?);
        on_breakdown(run(alpha, a2, b, beta, c2, ctx, metrics)?);
    } else if n >= k {
        // Wide B: split op(B) and C into left/right halves.
        let n1 = n / 2;
        let b1 = op_sub(b, op_b, 0, 0, k, n1);
        let b2 = op_sub(b, op_b, 0, n1, k, n - n1);
        let (c1, c2, _, _) = c.split_quad(m, n1);
        on_breakdown(run(alpha, a, b1, beta, c1, ctx, metrics)?);
        on_breakdown(run(alpha, a, b2, beta, c2, ctx, metrics)?);
    } else {
        // Wide A / lean B: split the inner dimension and accumulate.
        let k1 = k / 2;
        let a1 = op_sub(a, op_a, 0, 0, m, k1);
        let a2 = op_sub(a, op_a, 0, k1, m, k - k1);
        let b1 = op_sub(b, op_b, 0, 0, k1, n);
        let b2 = op_sub(b, op_b, k1, 0, k - k1, n);
        let mut c = c;
        on_breakdown(run(alpha, a1, b1, beta, c.reborrow(), ctx, metrics)?);
        on_breakdown(run(alpha, a2, b2, S::ONE, c, ctx, metrics)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use modgemm_mat::gen::random_matrix;
    use modgemm_mat::naive::naive_gemm;
    use modgemm_mat::norms::assert_matrix_eq;
    use modgemm_mat::Matrix;

    #[test]
    fn classification_follows_paper_taxonomy() {
        let r = TileRange::PAPER; // ratio 4
        assert_eq!(classify(100, 500, r), Shape::Wide);
        assert_eq!(classify(500, 100, r), Shape::Lean);
        assert_eq!(classify(100, 400, r), Shape::WellBehaved);
        assert_eq!(classify(400, 100, r), Shape::WellBehaved);
        assert_eq!(classify(256, 256, r), Shape::WellBehaved);
    }

    #[test]
    fn op_sub_maps_transposed_windows() {
        let x: Matrix<i64> = modgemm_mat::gen::coordinate_matrix(6, 8);
        // op(X) = Xᵀ is 8x6; window rows 2..5, cols 1..4 of Xᵀ equals
        // stored window rows 1..4, cols 2..5.
        let w = op_sub(x.view(), Op::Trans, 2, 1, 3, 3);
        assert_eq!(w.dims(), (3, 3));
        assert_eq!(w.get(0, 0), x.get(1, 2));
    }

    /// End-to-end check across all nine wide/lean/well-behaved operand
    /// combinations of the paper's Figure 4 discussion.
    #[test]
    fn all_nine_shape_combinations() {
        let cfg = ModgemmConfig::default();
        // (m, k) pairs realizing each A shape, (k, n) realizing each B
        // shape, sharing k.
        let cases = [
            (600usize, 70usize, 600usize), // A lean, B wide
            (600, 70, 70),                 // A lean, B well-behaved
            (600, 70, 12),                 // A lean, B lean
            (70, 600, 70),                 // A wide, B lean
            (70, 600, 600),                // A wide, B well-behaved
            (12, 600, 70),                 // A wide (extreme), B lean
            (70, 70, 600),                 // A well-behaved, B wide
            (600, 600, 70),                // A wb (square), B lean
            (70, 600, 4000),               // A wide, B wide
        ];
        for (idx, &(m, k, n)) in cases.iter().enumerate() {
            let a: Matrix<f64> = random_matrix(m, k, 200 + idx as u64);
            let b: Matrix<f64> = random_matrix(k, n, 300 + idx as u64);
            let c0: Matrix<f64> = random_matrix(m, n, 400 + idx as u64);
            let mut got = c0.clone();
            crate::gemm::modgemm(
                1.5,
                Op::NoTrans,
                a.view(),
                Op::NoTrans,
                b.view(),
                -0.5,
                got.view_mut(),
                &cfg,
            );
            let mut expect = c0;
            naive_gemm(1.5, Op::NoTrans, a.view(), Op::NoTrans, b.view(), -0.5, expect.view_mut());
            assert_matrix_eq(got.view(), expect.view(), k);
        }
    }

    #[test]
    fn paper_example_1024x256() {
        // The §3.5 worked example: 1024×256 times 256×1024 is exactly at
        // ratio 4 and must be *jointly* feasible (no split needed), while
        // 2048×256 forces a split. Both must be correct.
        let cfg = ModgemmConfig::default();
        for (m, k, n, seed) in [(1024usize, 256usize, 256usize, 1u64), (2048, 256, 256, 2)] {
            let a: Matrix<f64> = random_matrix(m, k, seed);
            let b: Matrix<f64> = random_matrix(k, n, seed + 10);
            let mut got: Matrix<f64> = Matrix::zeros(m, n);
            crate::gemm::modgemm(
                1.0,
                Op::NoTrans,
                a.view(),
                Op::NoTrans,
                b.view(),
                0.0,
                got.view_mut(),
                &cfg,
            );
            let mut expect: Matrix<f64> = Matrix::zeros(m, n);
            naive_gemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, expect.view_mut());
            assert_matrix_eq(got.view(), expect.view(), k);
        }
    }

    #[test]
    fn extreme_vectors_degrade_gracefully() {
        // Matrix-vector and vector-vector extremes.
        let cfg = ModgemmConfig::default();
        for (m, k, n) in [(500usize, 500usize, 1usize), (1, 500, 500), (500, 1, 500), (1, 500, 1)] {
            let a: Matrix<f64> = random_matrix(m, k, 7);
            let b: Matrix<f64> = random_matrix(k, n, 8);
            let mut got: Matrix<f64> = Matrix::zeros(m, n);
            crate::gemm::modgemm(
                1.0,
                Op::NoTrans,
                a.view(),
                Op::NoTrans,
                b.view(),
                0.0,
                got.view_mut(),
                &cfg,
            );
            let mut expect: Matrix<f64> = Matrix::zeros(m, n);
            naive_gemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, expect.view_mut());
            assert_matrix_eq(got.view(), expect.view(), k);
        }
    }
}
