//! Parallel evaluation of the seven Winograd products.
//!
//! The paper's code is sequential; parallelism is the natural extension
//! its future-work section gestures at. The seven products of one
//! recursion level are mutually independent *if* each gets its own
//! destination, so the parallel executor trades the low-memory in-place
//! schedule for explicit product buffers:
//!
//! * `S1..S4` and `T1..T4` are computed up front into eight temporaries,
//! * the seven products are spawned as scoped threads (four of them still
//!   write the disjoint `C` quadrants directly; `P1`, `P2`, `P5` get
//!   temporary buffers),
//! * the `U`-combinations run after the join, identically to the serial
//!   schedule's suffix.
//!
//! All of those buffers — the per-node temporaries *and* the per-worker
//! serial workspaces at the handover depth — are carved from **one
//! contiguous slab** whose size [`parallel_slab_len`] computes in closed
//! form at plan time. [`try_strassen_mul_parallel_in`] runs on a
//! caller-provided slab (the [`crate::gemm::GemmContext`] workspace, via a
//! [`crate::plan::GemmPlan`]) and performs no allocation at all;
//! [`try_strassen_mul_parallel`] is the one-shot form that allocates the
//! slab itself — a single allocation where the old per-node `vec!`
//! temporaries made `11 + 7·(child)` of them.
//!
//! Results are **bitwise identical** to the serial executor: the same
//! products are computed by the same kernels in the same associativity;
//! only the evaluation order across independent buffers changes.

use std::panic::{catch_unwind, AssertUnwindSafe};

use modgemm_mat::addsub::{add_assign_flat, add_flat, sub_flat};
use modgemm_mat::Scalar;

use crate::error::{panic_message, try_zeroed_vec, GemmError};
use crate::exec::{check_buffers, try_strassen_mul, workspace_len, ExecPolicy, NodeLayouts};
use crate::metrics::{MetricsSink, PlanFacts};

/// Closed-form size (in elements) of the slab the parallel executor
/// carves for a node of `layouts` under `policy` with `par_depth`
/// parallel levels: per parallel Winograd level, 8 operand temporaries
/// (`S1..S4` of `qa` elements, `T1..T4` of `qb`) plus 3 product
/// temporaries (`P1`, `P2`, `P5` of `qc`), then seven child slabs; at the
/// serial handover, one [`workspace_len`] arena per subtree.
pub fn parallel_slab_len(layouts: NodeLayouts, policy: ExecPolicy, par_depth: usize) -> usize {
    if par_depth == 0
        || !layouts.uses_strassen(policy)
        || policy.variant != crate::schedule::Variant::Winograd
    {
        return workspace_len(layouts, policy);
    }
    let per_node =
        4 * layouts.a.quadrant_len() + 4 * layouts.b.quadrant_len() + 3 * layouts.c.quadrant_len();
    per_node + 7 * parallel_slab_len(layouts.child(), policy, par_depth - 1)
}

/// Fallible core of [`strassen_mul_parallel`]: `C = A·B` with the top
/// `par_depth` Strassen levels evaluated in parallel.
///
/// One-shot form: allocates the [`parallel_slab_len`] slab itself (a
/// single allocation) and delegates to [`try_strassen_mul_parallel_in`].
///
/// A panicking worker thread is contained with `catch_unwind` and
/// surfaced as [`GemmError::WorkerPanic`] after all siblings have joined,
/// so one poisoned product can never abort the caller or leak a detached
/// thread. On any error `C` may hold partial products and must be treated
/// as garbage.
pub fn try_strassen_mul_parallel<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
) -> Result<(), GemmError> {
    check_buffers(a.len(), b.len(), c.len(), layouts)?;
    let mut slab = try_zeroed_vec::<S>(parallel_slab_len(layouts, policy, par_depth))?;
    try_strassen_mul_parallel_in(a, b, c, layouts, policy, par_depth, &mut slab)
}

/// [`try_strassen_mul_parallel`] on a caller-provided slab of at least
/// [`parallel_slab_len`] elements — the allocation-free form used by
/// planned execution. The slab need not be zeroed: every temporary is
/// fully written before it is read.
#[allow(clippy::too_many_arguments)]
pub fn try_strassen_mul_parallel_in<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
    slab: &mut [S],
) -> Result<(), GemmError> {
    check_buffers(a.len(), b.len(), c.len(), layouts)?;
    let needed = parallel_slab_len(layouts, policy, par_depth);
    if slab.len() < needed {
        return Err(GemmError::WorkspaceTooSmall { needed, got: slab.len() });
    }
    par_node(a, b, c, layouts, policy, par_depth, &mut slab[..needed])
}

/// The recursive worker: `slab` is exactly this subtree's
/// [`parallel_slab_len`] slice.
#[allow(clippy::too_many_arguments)]
fn par_node<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
    slab: &mut [S],
) -> Result<(), GemmError> {
    debug_assert_eq!(slab.len(), parallel_slab_len(layouts, policy, par_depth));

    // The parallel product placement below is derived from the Winograd
    // recurrences; the original-Strassen variant runs serially.
    if par_depth == 0
        || !layouts.uses_strassen(policy)
        || policy.variant != crate::schedule::Variant::Winograd
    {
        return try_strassen_mul(a, b, c, layouts, slab, policy);
    }

    let ch = layouts.child();
    let (qa, qb, qc) =
        (layouts.a.quadrant_len(), layouts.b.quadrant_len(), layouts.c.quadrant_len());
    let (a11, a12, a21, a22) = (&a[..qa], &a[qa..2 * qa], &a[2 * qa..3 * qa], &a[3 * qa..]);
    let (b11, b12, b21, b22) = (&b[..qb], &b[qb..2 * qb], &b[2 * qb..3 * qb], &b[3 * qb..]);

    // Carve this node's temporaries and the seven child slabs from the
    // front of the slab. `split_at_mut` chains (not `chunks_mut`) because
    // a fully-conventional child slab is legitimately zero-length.
    let child_len = parallel_slab_len(ch, policy, par_depth - 1);
    let (s1, rest) = slab.split_at_mut(qa);
    let (s2, rest) = rest.split_at_mut(qa);
    let (s3, rest) = rest.split_at_mut(qa);
    let (s4, rest) = rest.split_at_mut(qa);
    let (t1, rest) = rest.split_at_mut(qb);
    let (t2, rest) = rest.split_at_mut(qb);
    let (t3, rest) = rest.split_at_mut(qb);
    let (t4, rest) = rest.split_at_mut(qb);
    let (p1, rest) = rest.split_at_mut(qc);
    let (p2, rest) = rest.split_at_mut(qc);
    let (p5, rest) = rest.split_at_mut(qc);
    let (w1, rest) = rest.split_at_mut(child_len);
    let (w2, rest) = rest.split_at_mut(child_len);
    let (w3, rest) = rest.split_at_mut(child_len);
    let (w4, rest) = rest.split_at_mut(child_len);
    let (w5, rest) = rest.split_at_mut(child_len);
    let (w6, w7) = rest.split_at_mut(child_len);

    // S/T operand temporaries (computed serially; they are cheap,
    // memory-bound flat passes that fully overwrite their slots).
    add_flat(s1, a21, a22); // S1 = A21 + A22
    sub_flat(s2, s1, a11); // S2 = S1 − A11
    sub_flat(s3, a11, a21); // S3 = A11 − A21
    sub_flat(s4, a12, s2); // S4 = A12 − S2

    sub_flat(t1, b12, b11); // T1 = B12 − B11
    sub_flat(t2, b22, t1); // T2 = B22 − T1
    sub_flat(t3, b22, b12); // T3 = B22 − B12
    sub_flat(t4, b21, t2); // T4 = B21 − T2

    let (c11, rest) = c.split_at_mut(qc);
    let (c12, rest) = rest.split_at_mut(qc);
    let (c21, c22) = rest.split_at_mut(qc);

    let mut first_err: Option<GemmError> = None;
    {
        // Each task multiplies into its own disjoint destination with its
        // own slab slice, wrapped in catch_unwind so a panic is contained
        // to its product.
        let run = |av: &[S], bv: &[S], cv: &mut [S], wv: &mut [S]| {
            catch_unwind(AssertUnwindSafe(|| par_node(av, bv, cv, ch, policy, par_depth - 1, wv)))
        };
        let mut fold = |outcome: std::thread::Result<Result<(), GemmError>>| match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Err(payload) => {
                if first_err.is_none() {
                    first_err =
                        Some(GemmError::WorkerPanic { message: panic_message(payload.as_ref()) });
                }
            }
        };
        std::thread::scope(|scope| {
            let handles = [
                scope.spawn(|| run(a11, b11, &mut *p1, &mut *w1)), // P1
                scope.spawn(|| run(a12, b21, &mut *p2, &mut *w2)), // P2
                scope.spawn(|| run(&*s1, &*t1, &mut *c22, &mut *w3)), // P3 → C22
                scope.spawn(|| run(&*s2, &*t2, &mut *c11, &mut *w4)), // P4 → C11
                scope.spawn(|| run(&*s3, &*t3, &mut *p5, &mut *w5)), // P5
                scope.spawn(|| run(&*s4, b22, &mut *c12, &mut *w6)), // P6 → C12
            ];
            let inline = run(a22, t4, &mut *c21, &mut *w7); // P7 → C21 (on this thread)
            for h in handles {
                // The closure catches its own unwinds, so join itself can
                // only fail on a non-unwinding abort; flatten both paths.
                match h.join() {
                    Ok(outcome) => fold(outcome),
                    Err(payload) => fold(Err(payload)),
                }
            }
            fold(inline);
        });
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    // The serial schedule's combination suffix.
    add_assign_flat(c11, p1); // U2 = P1 + P4
    add_assign_flat(c12, c22); // P6 + P3
    add_assign_flat(c12, c11); // U7 = U2 + P3 + P6  → C12 done
    add_assign_flat(c11, p5); // U3 = U2 + P5
    add_assign_flat(c21, c11); // U4 = U3 + P7       → C21 done
    add_assign_flat(c22, c11); // U5 = U3 + P3       → C22 done
    add_flat(c11, p1, p2); // U1 = P1 + P2           → C11 done
    Ok(())
}

/// Modeled temporary allocations of the one-shot parallel executor
/// ([`try_strassen_mul_parallel`]): a single [`parallel_slab_len`] slab
/// covering every per-node temporary and handover workspace. Returns
/// `(allocation count, total elements)` — `(1, slab)` when the slab is
/// nonempty, `(0, 0)` otherwise. Planned execution
/// ([`try_strassen_mul_parallel_in`] on a warm context) allocates
/// nothing and is accounted by the context-growth metrics instead.
pub fn parallel_temp_allocs(
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
) -> (u64, u64) {
    let slab = parallel_slab_len(layouts, policy, par_depth);
    if slab > 0 {
        (1, slab as u64)
    } else {
        (0, 0)
    }
}

/// [`try_strassen_mul_parallel`] reporting through a [`MetricsSink`]
/// (see [`crate::metrics`]).
///
/// The parallel executor cannot share one `&mut` sink across its scoped
/// worker threads, so instrumentation is coarser than the serial
/// executor's: plan facts and the slab allocation are *modeled* (exactly
/// — the allocation site is deterministic), the whole call's wall time is
/// attributed to level 0, and the slab size is recorded as the workspace
/// reservation (it is what the call actually allocates beyond the
/// operand buffers).
pub fn try_strassen_mul_parallel_with_sink<S: Scalar, K: MetricsSink>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
    sink: &mut K,
) -> Result<(), GemmError> {
    if !K::ENABLED {
        return try_strassen_mul_parallel(a, b, c, layouts, policy, par_depth);
    }
    let t0 = std::time::Instant::now();
    try_strassen_mul_parallel(a, b, c, layouts, policy, par_depth)?;
    let elapsed = t0.elapsed();
    let (m, k, n) = layouts.dims();
    sink.record_plan(PlanFacts {
        padded: (m, k, n),
        depth: layouts.a.depth,
        strassen_levels: crate::counts::strassen_levels(layouts, policy),
        flops: crate::counts::strassen_flops(layouts, policy),
        conventional_flops: crate::counts::conventional_flops(m, k, n),
    });
    let (count, elems) = parallel_temp_allocs(layouts, policy, par_depth);
    if count > 0 {
        sink.record_temp_allocs(count, elems, elems * core::mem::size_of::<S>() as u64);
    }
    sink.record_workspace(elems as usize, elems as usize * core::mem::size_of::<S>());
    sink.record_level_time(0, elapsed);
    let (tm, tk, tn) = (layouts.a.tile_rows, layouts.a.tile_cols, layouts.b.tile_cols);
    sink.record_kernel(policy.kernel.resolve(tm, tk, tn));
    sink.record_bytes_packed(crate::counts::packed_bytes(
        layouts,
        policy,
        core::mem::size_of::<S>(),
    ));
    Ok(())
}

/// `C = A·B` with the top `par_depth` Strassen levels evaluated in
/// parallel (7 threads per level) and everything below running the serial
/// in-place executor.
///
/// # Panics
/// On the conditions [`try_strassen_mul_parallel`] reports as errors
/// (including a contained worker panic, re-raised here with its message).
#[track_caller]
pub fn strassen_mul_parallel<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
) {
    if let Err(e) = try_strassen_mul_parallel(a, b, c, layouts, policy, par_depth) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::strassen_mul;
    use modgemm_mat::gen::random_matrix;
    use modgemm_mat::naive::naive_product;
    use modgemm_mat::view::Op;
    use modgemm_mat::Matrix;
    use modgemm_morton::convert::{from_morton, to_morton};
    use modgemm_morton::MortonLayout;

    fn run_par(n: usize, tile: usize, depth: usize, par_depth: usize, seed: u64) {
        let l = MortonLayout::new(tile, tile, depth);
        let layouts = NodeLayouts::new(l, l, l);
        let a: Matrix<f64> = random_matrix(n, n, seed);
        let b: Matrix<f64> = random_matrix(n, n, seed + 1);
        let mut ab = vec![0.0; l.len()];
        let mut bb = vec![0.0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);

        let mut c_par = vec![0.0; l.len()];
        strassen_mul_parallel(&ab, &bb, &mut c_par, layouts, ExecPolicy::default(), par_depth);

        let mut c_ser = vec![0.0; l.len()];
        let mut ws = vec![0.0; workspace_len(layouts, ExecPolicy::default())];
        strassen_mul(&ab, &bb, &mut c_ser, layouts, &mut ws, ExecPolicy::default());

        // Same products, same kernels, same associativity ⇒ bitwise equal.
        assert_eq!(c_par, c_ser, "n = {n} par_depth = {par_depth}");

        let mut out = Matrix::zeros(n, n);
        from_morton(&c_par, &l, out.view_mut());
        modgemm_mat::norms::assert_matrix_eq(out.view(), naive_product(&a, &b).view(), n);
    }

    #[test]
    fn one_parallel_level() {
        run_par(64, 8, 3, 1, 1);
    }

    #[test]
    fn two_parallel_levels() {
        run_par(96, 12, 3, 2, 2);
    }

    #[test]
    fn par_depth_exceeding_recursion_depth() {
        run_par(32, 8, 2, 5, 3);
    }

    #[test]
    fn parallel_packed_kernel_matches_serial_and_reports_it() {
        use modgemm_mat::KernelKind;
        let l = MortonLayout::new(16, 16, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let policy = ExecPolicy { kernel: KernelKind::Packed, ..Default::default() };
        let a: Matrix<f64> = random_matrix(64, 64, 51);
        let b: Matrix<f64> = random_matrix(64, 64, 52);
        let mut ab = vec![0.0; l.len()];
        let mut bb = vec![0.0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);

        // Each worker's slab share carries its own packing slot, so the
        // parallel run must be bitwise identical to the serial one.
        let mut sink = crate::metrics::CollectingSink::new();
        let mut c_par = vec![0.0; l.len()];
        try_strassen_mul_parallel_with_sink(&ab, &bb, &mut c_par, layouts, policy, 1, &mut sink)
            .unwrap();
        let mut c_ser = vec![0.0; l.len()];
        let mut ws = vec![0.0; workspace_len(layouts, policy)];
        strassen_mul(&ab, &bb, &mut c_ser, layouts, &mut ws, policy);
        assert_eq!(c_par, c_ser);

        let m = sink.into_metrics();
        assert_eq!(m.kernel_selected, Some(KernelKind::Packed));
        assert_eq!(
            m.bytes_packed,
            crate::counts::packed_bytes(layouts, policy, core::mem::size_of::<f64>())
        );
        assert!(m.bytes_packed > 0);
    }

    #[test]
    fn par_depth_zero_is_serial() {
        run_par(32, 8, 2, 0, 4);
    }

    #[test]
    fn try_parallel_reports_buffer_mismatch() {
        use crate::error::{GemmError, Operand};
        let l = MortonLayout::new(4, 4, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let a = vec![0.0f64; l.len()];
        let b = vec![0.0f64; l.len() + 3];
        let mut c = vec![0.0f64; l.len()];
        assert_eq!(
            try_strassen_mul_parallel(&a, &b, &mut c, layouts, ExecPolicy::default(), 1),
            Err(GemmError::BufferLenMismatch {
                operand: Operand::B,
                needed: l.len(),
                got: l.len() + 3
            })
        );
    }

    #[test]
    fn slab_form_rejects_short_slabs_and_matches_oneshot() {
        let l = MortonLayout::new(8, 8, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let policy = ExecPolicy::default();
        let needed = parallel_slab_len(layouts, policy, 1);
        assert!(needed > 0);

        let a: Matrix<f64> = random_matrix(32, 32, 41);
        let b: Matrix<f64> = random_matrix(32, 32, 42);
        let mut ab = vec![0.0; l.len()];
        let mut bb = vec![0.0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);

        let mut c1 = vec![0.0; l.len()];
        let mut short = vec![0.0; needed - 1];
        assert_eq!(
            try_strassen_mul_parallel_in(&ab, &bb, &mut c1, layouts, policy, 1, &mut short),
            Err(GemmError::WorkspaceTooSmall { needed, got: needed - 1 })
        );

        // A dirty, oversized slab must still give the bitwise result.
        let mut dirty = vec![f64::NAN; needed + 13];
        try_strassen_mul_parallel_in(&ab, &bb, &mut c1, layouts, policy, 1, &mut dirty).unwrap();
        let mut c2 = vec![0.0; l.len()];
        try_strassen_mul_parallel(&ab, &bb, &mut c2, layouts, policy, 1).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn slab_model_matches_legacy_temp_total() {
        // The slab is exactly the sum the old per-node `vec!` temporaries
        // added up to: 4qa + 4qb + 3qc per parallel Winograd level, times
        // 7 per child, plus one serial workspace per handover subtree.
        let l = MortonLayout::new(8, 8, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let policy = ExecPolicy::default();
        let (qa, qb, qc) = (l.quadrant_len(), l.quadrant_len(), l.quadrant_len());
        let per_node = 4 * qa + 4 * qb + 3 * qc;
        let child = layouts.child();
        let expect = per_node + 7 * (workspace_len(child, policy));
        assert_eq!(parallel_slab_len(layouts, policy, 1), expect);
        // Handover cases degenerate to the serial workspace.
        assert_eq!(parallel_slab_len(layouts, policy, 0), workspace_len(layouts, policy));
    }

    #[test]
    fn try_parallel_succeeds_and_matches_serial() {
        let l = MortonLayout::new(8, 8, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let a: Matrix<f64> = random_matrix(32, 32, 21);
        let b: Matrix<f64> = random_matrix(32, 32, 22);
        let mut ab = vec![0.0; l.len()];
        let mut bb = vec![0.0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);
        let mut c_par = vec![0.0; l.len()];
        try_strassen_mul_parallel(&ab, &bb, &mut c_par, layouts, ExecPolicy::default(), 1).unwrap();
        let mut c_ser = vec![0.0; l.len()];
        let mut ws = vec![0.0; workspace_len(layouts, ExecPolicy::default())];
        strassen_mul(&ab, &bb, &mut c_ser, layouts, &mut ws, ExecPolicy::default());
        assert_eq!(c_par, c_ser);
    }

    #[test]
    fn integers_stay_exact_in_parallel() {
        let l = MortonLayout::new(4, 4, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let n = 32;
        let a: Matrix<i64> = random_matrix(n, n, 9);
        let b: Matrix<i64> = random_matrix(n, n, 10);
        let mut ab = vec![0; l.len()];
        let mut bb = vec![0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);
        let mut cb = vec![0; l.len()];
        strassen_mul_parallel(&ab, &bb, &mut cb, layouts, ExecPolicy::default(), 2);
        let mut out = Matrix::zeros(n, n);
        from_morton(&cb, &l, out.view_mut());
        assert_eq!(out, naive_product(&a, &b));
    }
}
