//! Parallel evaluation of the Strassen-Winograd recursion on the
//! persistent work-stealing pool.
//!
//! The paper's code is sequential; parallelism is the natural extension
//! its future-work section gestures at. The seven products of one
//! recursion level are mutually independent *if* each gets its own
//! destination, so the parallel executor trades the low-memory in-place
//! schedule for explicit product buffers:
//!
//! * `S1..S4` and `T1..T4` are computed into eight temporaries,
//! * the seven products run as independent tasks (four of them still
//!   write the disjoint `C` quadrants directly; `P1`, `P2`, `P5` get
//!   temporary buffers),
//! * the `U`-combinations run once all seven products of the node are
//!   done, identically to the serial schedule's suffix.
//!
//! Historically each Winograd node spawned seven scoped OS threads and
//! everything below the top level ran serially. The executor now lowers
//! the whole `par_depth`-deep recursion into a dependency-counted task
//! DAG ([`crate::plan`](mod@crate::plan)'s lowering) and schedules it on the persistent
//! [`crate::pool::ThreadPool`]: S/T pre-addition passes, every product
//! at every parallel level, and the post-addition merges all become
//! stealable tasks, so the pool overlaps sibling subtrees across levels
//! instead of capping out at seven-way parallelism — and no OS thread is
//! ever spawned past the first call at a given worker count.
//!
//! All buffers — the per-node temporaries *and* the per-subtree serial
//! workspaces at the handover depth — are carved from **one contiguous
//! slab** whose size [`parallel_slab_len`] computes in closed form at
//! plan time. [`try_strassen_mul_parallel_in`] runs on a caller-provided
//! slab (the [`crate::gemm::GemmContext`] workspace, via a
//! [`crate::plan::GemmPlan`]); [`try_strassen_mul_parallel`] is the
//! one-shot form that allocates the slab itself — a single allocation
//! where the old per-node `vec!` temporaries made `11 + 7·(child)` of
//! them.
//!
//! Results are **bitwise identical** to the serial executor: the same
//! products are computed by the same kernels in the same associativity;
//! only the evaluation order across independent buffers changes.

use modgemm_mat::Scalar;

use crate::config::ModgemmConfig;
use crate::error::{try_zeroed_vec, GemmError};
use crate::exec::{check_buffers, staged_step, workspace_len, ExecPolicy, NodeLayouts};
use crate::metrics::{MetricsSink, NoopSink, PlanFacts};
use crate::plan::{fill_levels, lower_dag, LevelPlan, MAX_LEVELS};
use crate::pool::{resolve_threads, run_graph, PoolScratch};
use crate::schedule::Variant;

/// Closed-form size (in elements) of the slab the parallel executor
/// carves for a node of `layouts` under `policy` with `par_depth`
/// parallel levels: per parallel Winograd level, 8 operand temporaries
/// (`S1..S4` of `qa` elements, `T1..T4` of `qb`) plus 3 product
/// temporaries (`P1`, `P2`, `P5` of `qc`), then seven child slabs; at the
/// serial handover, one [`workspace_len`] arena per subtree.
pub fn parallel_slab_len(layouts: NodeLayouts, policy: ExecPolicy, par_depth: usize) -> usize {
    if par_depth == 0
        || !staged_step(layouts, policy)
        || policy.variant != crate::schedule::Variant::Winograd
    {
        return workspace_len(layouts, policy);
    }
    let per_node =
        4 * layouts.a.quadrant_len() + 4 * layouts.b.quadrant_len() + 3 * layouts.c.quadrant_len();
    per_node + 7 * parallel_slab_len(layouts.child(), policy, par_depth - 1)
}

/// The parallel DAG depth a plan will actually execute with under `cfg`
/// — `None` means "run serially".
///
/// This is where the memory budget meets the parallel slab: the serial
/// recursion depth was already budget-capped by
/// [`crate::exec::budget_capped_policy`] against [`workspace_len`], but
/// parallel execution multiplies workspace across concurrent subtrees
/// ([`parallel_slab_len`]). A tight budget therefore caps the *DAG
/// depth* (worker parallelism) first, stepping `par_depth` down until
/// the slab fits, and only falls back to fully-serial execution — never
/// to a shallower Strassen recursion — when even one parallel level is
/// too big.
pub(crate) fn effective_par_depth<S: Scalar>(
    layouts: NodeLayouts,
    policy: ExecPolicy,
    cfg: &ModgemmConfig,
) -> Option<usize> {
    if cfg.parallel_depth == 0 || resolve_threads(cfg.threads) < 2 {
        return None;
    }
    if policy.variant != Variant::Winograd || !staged_step(layouts, policy) {
        return None;
    }
    let budget = cfg.memory_budget.max_elements(core::mem::size_of::<S>());
    // Only the *staged* levels lower to DAG nodes: a fused subtree runs
    // sequentially inside its Leaf task.
    let mut depth = cfg.parallel_depth.min(crate::counts::staged_levels(layouts, policy));
    while depth > 0 && parallel_slab_len(layouts, policy, depth) > budget {
        depth -= 1;
    }
    (depth > 0).then_some(depth)
}

/// Fallible core of [`strassen_mul_parallel`]: `C = A·B` with the top
/// `par_depth` Strassen levels lowered to a task DAG and executed on the
/// work-stealing pool at the default worker count
/// ([`crate::pool::resolve_threads`]`(0)`).
///
/// One-shot form: allocates the [`parallel_slab_len`] slab itself (a
/// single allocation) and delegates to [`try_strassen_mul_parallel_in`].
///
/// A panicking worker task is contained with `catch_unwind` and surfaced
/// as [`GemmError::WorkerPanic`] after the join, so one poisoned product
/// can never abort the caller or leak a detached thread. On any error
/// `C` may hold partial products and must be treated as garbage.
pub fn try_strassen_mul_parallel<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
) -> Result<(), GemmError> {
    check_buffers(a.len(), b.len(), c.len(), layouts)?;
    let mut slab = try_zeroed_vec::<S>(parallel_slab_len(layouts, policy, par_depth))?;
    try_strassen_mul_parallel_in(a, b, c, layouts, policy, par_depth, &mut slab)
}

/// [`try_strassen_mul_parallel`] on a caller-provided slab of at least
/// [`parallel_slab_len`] elements — the allocation-free form used by
/// planned execution. The slab need not be zeroed: every temporary is
/// fully written before it is read.
#[allow(clippy::too_many_arguments)]
pub fn try_strassen_mul_parallel_in<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
    slab: &mut [S],
) -> Result<(), GemmError> {
    try_strassen_mul_parallel_in_threads(
        a,
        b,
        c,
        layouts,
        policy,
        par_depth,
        resolve_threads(0),
        slab,
    )
}

/// [`try_strassen_mul_parallel_in`] with an explicit worker count
/// (`threads` CPUs total: the calling thread plus `threads − 1` pool
/// threads). `threads < 2` or `par_depth == 0` runs the serial executor
/// on the same slab — bitwise-identically.
#[allow(clippy::too_many_arguments)]
pub fn try_strassen_mul_parallel_in_threads<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
    threads: usize,
    slab: &mut [S],
) -> Result<(), GemmError> {
    run_parallel(a, b, c, layouts, policy, par_depth, threads, slab, &mut NoopSink)
}

/// Shared implementation of the one-shot pooled entry points: validates
/// buffers, compiles the level list and DAG per call (the plan/execute
/// split amortizes this; the one-shot forms pay it), and runs the pool.
#[allow(clippy::too_many_arguments)]
fn run_parallel<S: Scalar, K: MetricsSink>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
    threads: usize,
    slab: &mut [S],
    sink: &mut K,
) -> Result<(), GemmError> {
    if policy.sched().overwrites_inputs() {
        return Err(GemmError::InvalidConfig {
            reason: "the in-place schedule overwrites its operands; the shared-reference \
                     pooled entry points cannot run it (use a planned execution)",
        });
    }
    check_buffers(a.len(), b.len(), c.len(), layouts)?;
    let needed = parallel_slab_len(layouts, policy, par_depth);
    if slab.len() < needed {
        return Err(GemmError::WorkspaceTooSmall { needed, got: slab.len() });
    }
    let mut levels_buf = [LevelPlan::EMPTY; MAX_LEVELS];
    let count = fill_levels(&mut levels_buf, layouts, policy);
    let levels = &levels_buf[..count];
    if par_depth == 0
        || threads < 2
        || !staged_step(layouts, policy)
        || policy.variant != Variant::Winograd
    {
        // Serial degradation on the same slab (`parallel_slab_len` ≥
        // `workspace_len` always). Runs the flattened schedule directly so
        // the sink sees level times without re-recording plan facts.
        let serial = workspace_len(layouts, policy);
        let _ = crate::plan::exec_levels(
            a,
            b,
            c,
            layouts,
            levels,
            0,
            &mut slab[..serial],
            policy,
            sink,
        );
        return Ok(());
    }
    let depth = par_depth.min(crate::counts::staged_levels(layouts, policy)).min(count);
    let graph = lower_dag(layouts, policy, depth);
    let mut level_layouts = [layouts; MAX_LEVELS + 1];
    let mut l = layouts;
    for (i, slot) in level_layouts.iter_mut().enumerate().take(depth + 1) {
        *slot = l;
        if i < depth {
            // Never step past the leaf (depth can reach it).
            l = l.child();
        }
    }
    let mut scratch = PoolScratch::default();
    run_graph(
        &graph,
        levels,
        &level_layouts[..depth + 1],
        policy,
        threads,
        a,
        b,
        c,
        &mut slab[..graph.slab_len],
        &mut scratch,
        None,
        sink,
    )
}

/// Modeled temporary allocations of the one-shot parallel executor
/// ([`try_strassen_mul_parallel`]): a single [`parallel_slab_len`] slab
/// covering every per-node temporary and handover workspace. Returns
/// `(allocation count, total elements)` — `(1, slab)` when the slab is
/// nonempty, `(0, 0)` otherwise. Planned execution
/// ([`try_strassen_mul_parallel_in`] on a warm context) allocates
/// nothing and is accounted by the context-growth metrics instead.
pub fn parallel_temp_allocs(
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
) -> (u64, u64) {
    let slab = parallel_slab_len(layouts, policy, par_depth);
    if slab > 0 {
        (1, slab as u64)
    } else {
        (0, 0)
    }
}

/// [`try_strassen_mul_parallel`] reporting through a [`MetricsSink`]
/// (see [`crate::metrics`]).
///
/// Instrumentation parity with the serial executor: plan facts and the
/// slab allocation are modeled (exactly — the allocation site is
/// deterministic), while per-level wall times come from the per-worker
/// metric shards the pool merges at the join (each worker books its
/// tasks' exclusive times against their recursion level), alongside the
/// pool counters (`ExecMetrics::pool`). Serial and pooled runs of the
/// same problem therefore report identical plan/flop facts and the same
/// per-level time vocabulary — the old "coarser than serial" caveat is
/// gone.
pub fn try_strassen_mul_parallel_with_sink<S: Scalar, K: MetricsSink>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
    sink: &mut K,
) -> Result<(), GemmError> {
    if !K::ENABLED {
        return try_strassen_mul_parallel(a, b, c, layouts, policy, par_depth);
    }
    check_buffers(a.len(), b.len(), c.len(), layouts)?;
    let mut slab = try_zeroed_vec::<S>(parallel_slab_len(layouts, policy, par_depth))?;
    let (m, k, n) = layouts.dims();
    sink.record_plan(PlanFacts {
        padded: (m, k, n),
        depth: layouts.a.depth,
        strassen_levels: crate::counts::strassen_levels(layouts, policy),
        fused_levels: crate::counts::fused_levels(layouts, policy),
        schedule: policy.sched(),
        flops: crate::counts::strassen_flops(layouts, policy),
        conventional_flops: crate::counts::conventional_flops(m, k, n),
    });
    let (count, elems) = parallel_temp_allocs(layouts, policy, par_depth);
    if count > 0 {
        sink.record_temp_allocs(count, elems, elems * core::mem::size_of::<S>() as u64);
    }
    sink.record_workspace(elems as usize, elems as usize * core::mem::size_of::<S>());
    let (tm, tk, tn) = (layouts.a.tile_rows, layouts.a.tile_cols, layouts.b.tile_cols);
    sink.record_kernel(policy.kernel.resolve(tm, tk, tn));
    sink.record_bytes_packed(crate::counts::packed_bytes(
        layouts,
        policy,
        core::mem::size_of::<S>(),
    ));
    run_parallel(a, b, c, layouts, policy, par_depth, resolve_threads(0), &mut slab, sink)
}

/// `C = A·B` with the top `par_depth` Strassen levels scheduled as a
/// task DAG on the work-stealing pool and everything below running the
/// serial in-place executor.
///
/// # Panics
/// On the conditions [`try_strassen_mul_parallel`] reports as errors
/// (including a contained worker panic, re-raised here with its message).
#[track_caller]
pub fn strassen_mul_parallel<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    policy: ExecPolicy,
    par_depth: usize,
) {
    if let Err(e) = try_strassen_mul_parallel(a, b, c, layouts, policy, par_depth) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::strassen_mul;
    use modgemm_mat::gen::random_matrix;
    use modgemm_mat::naive::naive_product;
    use modgemm_mat::view::Op;
    use modgemm_mat::Matrix;
    use modgemm_morton::convert::{from_morton, to_morton};
    use modgemm_morton::MortonLayout;

    fn run_par(n: usize, tile: usize, depth: usize, par_depth: usize, seed: u64) {
        let l = MortonLayout::new(tile, tile, depth);
        let layouts = NodeLayouts::new(l, l, l);
        let a: Matrix<f64> = random_matrix(n, n, seed);
        let b: Matrix<f64> = random_matrix(n, n, seed + 1);
        let mut ab = vec![0.0; l.len()];
        let mut bb = vec![0.0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);

        let mut c_par = vec![0.0; l.len()];
        strassen_mul_parallel(&ab, &bb, &mut c_par, layouts, ExecPolicy::default(), par_depth);

        let mut c_ser = vec![0.0; l.len()];
        let mut ws = vec![0.0; workspace_len(layouts, ExecPolicy::default())];
        strassen_mul(&ab, &bb, &mut c_ser, layouts, &mut ws, ExecPolicy::default());

        // Same products, same kernels, same associativity ⇒ bitwise equal.
        assert_eq!(c_par, c_ser, "n = {n} par_depth = {par_depth}");

        // The pooled executor at several explicit worker counts must also
        // be bitwise identical, whatever the machine's own parallelism.
        for threads in [2, 3, 7] {
            let mut c_pool = vec![f64::NAN; l.len()];
            let mut slab =
                vec![f64::NAN; parallel_slab_len(layouts, ExecPolicy::default(), par_depth)];
            try_strassen_mul_parallel_in_threads(
                &ab,
                &bb,
                &mut c_pool,
                layouts,
                ExecPolicy::default(),
                par_depth,
                threads,
                &mut slab,
            )
            .unwrap();
            assert_eq!(c_pool, c_ser, "n = {n} par_depth = {par_depth} threads = {threads}");
        }

        let mut out = Matrix::zeros(n, n);
        from_morton(&c_par, &l, out.view_mut());
        modgemm_mat::norms::assert_matrix_eq(out.view(), naive_product(&a, &b).view(), n);
    }

    #[test]
    fn one_parallel_level() {
        run_par(64, 8, 3, 1, 1);
    }

    #[test]
    fn two_parallel_levels() {
        run_par(96, 12, 3, 2, 2);
    }

    #[test]
    fn par_depth_exceeding_recursion_depth() {
        run_par(32, 8, 2, 5, 3);
    }

    #[test]
    fn parallel_packed_kernel_matches_serial_and_reports_it() {
        use modgemm_mat::KernelKind;
        let l = MortonLayout::new(16, 16, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let policy = ExecPolicy { kernel: KernelKind::Packed, ..Default::default() };
        let a: Matrix<f64> = random_matrix(64, 64, 51);
        let b: Matrix<f64> = random_matrix(64, 64, 52);
        let mut ab = vec![0.0; l.len()];
        let mut bb = vec![0.0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);

        // Each worker's slab share carries its own packing slot, so the
        // parallel run must be bitwise identical to the serial one.
        let mut sink = crate::metrics::CollectingSink::new();
        let mut c_par = vec![0.0; l.len()];
        try_strassen_mul_parallel_with_sink(&ab, &bb, &mut c_par, layouts, policy, 1, &mut sink)
            .unwrap();
        let mut c_ser = vec![0.0; l.len()];
        let mut ws = vec![0.0; workspace_len(layouts, policy)];
        strassen_mul(&ab, &bb, &mut c_ser, layouts, &mut ws, policy);
        assert_eq!(c_par, c_ser);

        let m = sink.into_metrics();
        assert_eq!(m.kernel_selected, Some(KernelKind::Packed));
        assert_eq!(
            m.bytes_packed,
            crate::counts::packed_bytes(layouts, policy, core::mem::size_of::<f64>())
        );
        assert!(m.bytes_packed > 0);
    }

    #[test]
    fn par_depth_zero_is_serial() {
        run_par(32, 8, 2, 0, 4);
    }

    #[test]
    fn pooled_parallel_with_fused_leaves_matches_staged_serial() {
        use modgemm_mat::KernelKind;
        // Depth 3 with fuse 2 leaves exactly one *staged* level for the
        // DAG; each Leaf task then runs a two-level fused subtree. The
        // pooled run must agree bit-for-bit (i64) with both the serial
        // fused executor and the fully staged oracle, at every worker
        // count — this is the test the TSan job drives to race-check
        // fused execution under real concurrency.
        let l = MortonLayout::new(8, 8, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let a: Matrix<i64> = random_matrix(64, 64, 61);
        let b: Matrix<i64> = random_matrix(64, 64, 62);
        let mut ab = vec![0i64; l.len()];
        let mut bb = vec![0i64; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);

        let staged = ExecPolicy { kernel: KernelKind::Packed, ..Default::default() };
        let fused = ExecPolicy { fuse: 2, ..staged };
        let mut c_oracle = vec![0i64; l.len()];
        let mut ws = vec![0i64; workspace_len(layouts, staged)];
        strassen_mul(&ab, &bb, &mut c_oracle, layouts, &mut ws, staged);
        let mut c_fused = vec![0i64; l.len()];
        let mut ws = vec![0i64; workspace_len(layouts, fused)];
        strassen_mul(&ab, &bb, &mut c_fused, layouts, &mut ws, fused);
        assert_eq!(c_fused, c_oracle, "serial fused vs staged oracle");

        for threads in [2, 4] {
            let mut c_pool = vec![i64::MAX; l.len()];
            let mut slab = vec![0i64; parallel_slab_len(layouts, fused, 1)];
            try_strassen_mul_parallel_in_threads(
                &ab,
                &bb,
                &mut c_pool,
                layouts,
                fused,
                1,
                threads,
                &mut slab,
            )
            .unwrap();
            assert_eq!(c_pool, c_oracle, "threads = {threads}");
        }
    }

    #[test]
    fn try_parallel_reports_buffer_mismatch() {
        use crate::error::{GemmError, Operand};
        let l = MortonLayout::new(4, 4, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let a = vec![0.0f64; l.len()];
        let b = vec![0.0f64; l.len() + 3];
        let mut c = vec![0.0f64; l.len()];
        assert_eq!(
            try_strassen_mul_parallel(&a, &b, &mut c, layouts, ExecPolicy::default(), 1),
            Err(GemmError::BufferLenMismatch {
                operand: Operand::B,
                needed: l.len(),
                got: l.len() + 3
            })
        );
    }

    #[test]
    fn slab_form_rejects_short_slabs_and_matches_oneshot() {
        let l = MortonLayout::new(8, 8, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let policy = ExecPolicy::default();
        let needed = parallel_slab_len(layouts, policy, 1);
        assert!(needed > 0);

        let a: Matrix<f64> = random_matrix(32, 32, 41);
        let b: Matrix<f64> = random_matrix(32, 32, 42);
        let mut ab = vec![0.0; l.len()];
        let mut bb = vec![0.0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);

        let mut c1 = vec![0.0; l.len()];
        let mut short = vec![0.0; needed - 1];
        assert_eq!(
            try_strassen_mul_parallel_in(&ab, &bb, &mut c1, layouts, policy, 1, &mut short),
            Err(GemmError::WorkspaceTooSmall { needed, got: needed - 1 })
        );

        // A dirty, oversized slab must still give the bitwise result.
        let mut dirty = vec![f64::NAN; needed + 13];
        try_strassen_mul_parallel_in(&ab, &bb, &mut c1, layouts, policy, 1, &mut dirty).unwrap();
        let mut c2 = vec![0.0; l.len()];
        try_strassen_mul_parallel(&ab, &bb, &mut c2, layouts, policy, 1).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn slab_model_matches_legacy_temp_total() {
        // The slab is exactly the sum the old per-node `vec!` temporaries
        // added up to: 4qa + 4qb + 3qc per parallel Winograd level, times
        // 7 per child, plus one serial workspace per handover subtree.
        let l = MortonLayout::new(8, 8, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let policy = ExecPolicy::default();
        let (qa, qb, qc) = (l.quadrant_len(), l.quadrant_len(), l.quadrant_len());
        let per_node = 4 * qa + 4 * qb + 3 * qc;
        let child = layouts.child();
        let expect = per_node + 7 * (workspace_len(child, policy));
        assert_eq!(parallel_slab_len(layouts, policy, 1), expect);
        // Handover cases degenerate to the serial workspace.
        assert_eq!(parallel_slab_len(layouts, policy, 0), workspace_len(layouts, policy));
    }

    #[test]
    fn try_parallel_succeeds_and_matches_serial() {
        let l = MortonLayout::new(8, 8, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let a: Matrix<f64> = random_matrix(32, 32, 21);
        let b: Matrix<f64> = random_matrix(32, 32, 22);
        let mut ab = vec![0.0; l.len()];
        let mut bb = vec![0.0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);
        let mut c_par = vec![0.0; l.len()];
        try_strassen_mul_parallel(&ab, &bb, &mut c_par, layouts, ExecPolicy::default(), 1).unwrap();
        let mut c_ser = vec![0.0; l.len()];
        let mut ws = vec![0.0; workspace_len(layouts, ExecPolicy::default())];
        strassen_mul(&ab, &bb, &mut c_ser, layouts, &mut ws, ExecPolicy::default());
        assert_eq!(c_par, c_ser);
    }

    #[test]
    fn integers_stay_exact_in_parallel() {
        let l = MortonLayout::new(4, 4, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let n = 32;
        let a: Matrix<i64> = random_matrix(n, n, 9);
        let b: Matrix<i64> = random_matrix(n, n, 10);
        let mut ab = vec![0; l.len()];
        let mut bb = vec![0; l.len()];
        to_morton(a.view(), Op::NoTrans, &l, &mut ab);
        to_morton(b.view(), Op::NoTrans, &l, &mut bb);
        let mut cb = vec![0; l.len()];
        strassen_mul_parallel(&ab, &bb, &mut cb, layouts, ExecPolicy::default(), 2);
        let mut out = Matrix::zeros(n, n);
        from_morton(&cb, &l, out.view_mut());
        assert_eq!(out, naive_product(&a, &b));

        // Pooled DAG execution stays exact (and bitwise serial-equal) at
        // a worker count well above one level's task count.
        let mut c_pool = vec![0; l.len()];
        let mut slab = vec![0; parallel_slab_len(layouts, ExecPolicy::default(), 2)];
        try_strassen_mul_parallel_in_threads(
            &ab,
            &bb,
            &mut c_pool,
            layouts,
            ExecPolicy::default(),
            2,
            16,
            &mut slab,
        )
        .unwrap();
        assert_eq!(c_pool, cb);
    }
}
