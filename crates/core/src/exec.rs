//! The Morton-order Strassen-Winograd executor.
//!
//! Operates entirely on Morton buffers, exploiting the two properties the
//! layout guarantees (§3.3):
//!
//! * every quadrant at every recursion level is a **contiguous** quarter of
//!   its parent's buffer, so all 15 Winograd additions run as single-loop
//!   flat kernels;
//! * every leaf is a contiguous column-major tile, so the truncated
//!   recursion bottoms out in [`modgemm_mat::blocked`] with `ld == rows` —
//!   the stable, self-interference-free configuration of Figure 3.
//!
//! The recursion interprets the selected variant's schedule
//! ([`crate::schedule::WINOGRAD_SCHEDULE`] by default); the four C
//! quadrants serve as product scratch (sound because Morton quadrants
//! never alias), plus four workspace temporaries per level
//! (`TS`, `TT`, `TP`, `TQ`). Workspace is allocated once, sized by
//! [`workspace_len`], and consumed stack-wise down the recursion.

use modgemm_mat::view::{MatMut, MatRef};
use modgemm_mat::{KernelKind, LeafKernel, Scalar};
use modgemm_morton::MortonLayout;

use crate::error::{GemmError, Operand};
use crate::metrics::{MetricsSink, NoopSink, PlanFacts};
use crate::plan::{fill_levels, LevelPlan, MAX_LEVELS};
use crate::schedule::{Schedule, Step, Variant};

/// Controls where the Strassen recursion hands over to the conventional
/// algorithm, which §2 schedule it runs, and which leaf kernel multiplies
/// the truncated tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Apply the Strassen step only while `min(m, k, n)` of the current
    /// node strictly exceeds this; below it, the Morton-aware conventional
    /// recursion ([`morton_mul`]) takes over. `0` reproduces the paper:
    /// Strassen at every quadrant division down to single tiles.
    pub strassen_min: usize,
    /// Winograd (the paper's choice) or original Strassen recurrences.
    pub variant: Variant,
    /// Leaf multiply kernel ([`KernelKind::Blocked`] by default, matching
    /// the paper's blocked vendor-BLAS stand-in).
    pub kernel: KernelKind,
    /// Number of *innermost* Strassen levels to run fused (pre-adds folded
    /// into operand packing, post-merges scattered from the microkernel
    /// epilogue — no S/T arena slots; see [`crate::fuse`]). Clamped to the
    /// levels the recursion actually takes and to
    /// [`crate::fuse::MAX_FUSE`]. `0` keeps the fully staged pipeline.
    pub fuse: usize,
    /// Memory tier of the staged recursion step's linearization (Boyer et
    /// al.): [`Schedule::Standard`], [`Schedule::LowMem`] or
    /// [`Schedule::InPlace`]. Only the Winograd recurrences have
    /// low-memory linearizations; under [`Variant::Strassen`] every tier
    /// behaves as `Standard` (see [`ExecPolicy::sched`]).
    pub schedule: Schedule,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self {
            strassen_min: 0,
            variant: Variant::Winograd,
            kernel: KernelKind::Blocked,
            fuse: 0,
            schedule: Schedule::Standard,
        }
    }
}

impl ExecPolicy {
    /// The *effective* schedule tier: [`Variant::Strassen`] has a single
    /// linearization, so it normalizes every requested tier to
    /// `Standard`. All memory models and executors consult this, never
    /// the raw field.
    #[inline]
    pub fn sched(&self) -> Schedule {
        if self.variant == Variant::Strassen {
            Schedule::Standard
        } else {
            self.schedule
        }
    }

    /// The step sequence interpreted at staged levels of this policy.
    #[inline]
    pub fn steps(&self) -> &'static [Step] {
        crate::schedule::steps_for(self.variant, self.sched())
    }
}

/// The three layouts of one GEMM node. Invariants: equal depths, and
/// `A.tile_cols == B.tile_rows`, `A.tile_rows == C.tile_rows`,
/// `B.tile_cols == C.tile_cols`.
#[derive(Clone, Copy, Debug)]
pub struct NodeLayouts {
    /// Layout of A (`Tm × Tk` tiles).
    pub a: MortonLayout,
    /// Layout of B (`Tk × Tn` tiles).
    pub b: MortonLayout,
    /// Layout of C (`Tm × Tn` tiles).
    pub c: MortonLayout,
}

impl NodeLayouts {
    /// Validates the cross-layout invariants.
    #[track_caller]
    pub fn new(a: MortonLayout, b: MortonLayout, c: MortonLayout) -> Self {
        assert!(a.depth == b.depth && b.depth == c.depth, "depth mismatch");
        assert_eq!(a.tile_cols, b.tile_rows, "inner tile mismatch");
        assert_eq!(a.tile_rows, c.tile_rows, "row tile mismatch");
        assert_eq!(b.tile_cols, c.tile_cols, "col tile mismatch");
        Self { a, b, c }
    }

    /// Padded GEMM dimensions `(m, k, n)` of this node.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.a.rows(), self.a.cols(), self.b.cols())
    }

    /// Layouts of the half-size children.
    #[inline]
    #[track_caller]
    pub fn child(&self) -> NodeLayouts {
        NodeLayouts { a: self.a.child(), b: self.b.child(), c: self.c.child() }
    }

    /// True when this node applies the Strassen step (rather than the
    /// conventional recursion) under `policy`.
    #[inline]
    pub fn uses_strassen(&self, policy: ExecPolicy) -> bool {
        let (m, k, n) = self.dims();
        self.a.depth > 0 && m.min(k).min(n) > policy.strassen_min
    }
}

/// Packing workspace (elements) the leaf kernel needs for **one** leaf
/// tile multiply of `layouts` under `policy` — nonzero only when the
/// plan's kernel packs its operands
/// ([`modgemm_mat::KernelKind::pack_len`]). Leaf tile dimensions are the
/// same at every node of the recursion, and the conventional Morton
/// recursion below the handover runs its leaves sequentially, so one
/// slot — placed at the arena's tail by [`workspace_len`] — serves every
/// leaf of a serial subtree.
pub fn leaf_pack_len(layouts: NodeLayouts, policy: ExecPolicy) -> usize {
    policy.kernel.pack_len(layouts.a.tile_rows, layouts.a.tile_cols, layouts.b.tile_cols)
}

/// Number of *innermost* Strassen levels of `layouts` that run fused
/// under `policy`: the requested [`ExecPolicy::fuse`], clamped to the
/// levels the recursion actually takes and to the depth the fused
/// operand tables cover ([`crate::fuse::MAX_FUSE`]).
pub fn fused_levels(layouts: NodeLayouts, policy: ExecPolicy) -> usize {
    policy.fuse.min(crate::counts::strassen_levels(layouts, policy)).min(crate::fuse::MAX_FUSE)
}

/// True when this node runs a *staged* Strassen step — S/T temporaries
/// materialized in the arena. The innermost [`fused_levels`] levels do
/// not stage: they execute inside the fused terminal
/// ([`crate::fuse::fused_mul_with_ws`]) instead.
pub fn staged_step(layouts: NodeLayouts, policy: ExecPolicy) -> bool {
    layouts.uses_strassen(policy)
        && crate::counts::strassen_levels(layouts, policy) > policy.fuse.min(crate::fuse::MAX_FUSE)
}

/// Arena tail slot (elements) for the terminal subtree rooted at
/// `layouts`: the single [`leaf_pack_len`] slot when no levels fuse, or
/// the fused-leaf working set
/// ([`modgemm_mat::KernelKind::fused_leaf_len`]) when they do. Leaf tile
/// dimensions are identical at every node, and the terminal subtree runs
/// its products sequentially, so one tail slot serves the whole subtree
/// in both shapes.
pub fn fused_tail_len(layouts: NodeLayouts, policy: ExecPolicy) -> usize {
    if fused_levels(layouts, policy) == 0 {
        leaf_pack_len(layouts, policy)
    } else {
        policy.kernel.fused_leaf_len(layouts.a.tile_rows, layouts.a.tile_cols, layouts.b.tile_cols)
    }
}

/// Workspace (in elements) needed by [`strassen_mul`] for `layouts` under
/// `policy`: the schedule tier's per-level temporary slots
/// ([`Schedule::level_temp_elems`] — `|TS| + |TT| + |TP| + |TQ|` for the
/// standard tier, `|TS| + |TT| + |TP|` for low-mem, `|TP|` alone for
/// in-place), summed down the recursion (children run sequentially, so
/// one child workspace suffices) — roughly `(mk + kn + 2mn)/3` elements
/// for the standard tier — plus one [`fused_tail_len`] slot at the tail:
/// the [`leaf_pack_len`] panel buffers of the (sequential) leaf
/// multiplies when no levels fuse, or the fused-leaf working set when
/// [`ExecPolicy::fuse`] absorbs the innermost levels. Fused levels
/// contribute **no** per-level S/T slots, which is exactly the arena
/// saving operand fusion buys.
///
/// Deliberately scalar-type-independent: all terms are element counts,
/// so non-generic callers (the cache simulator, the closed-form tests)
/// share the same model the allocator uses.
pub fn workspace_len(layouts: NodeLayouts, policy: ExecPolicy) -> usize {
    if !staged_step(layouts, policy) {
        return fused_tail_len(layouts, policy);
    }
    let per_level = policy.sched().level_temp_elems(
        layouts.a.quadrant_len(),
        layouts.b.quadrant_len(),
        layouts.c.quadrant_len(),
    );
    per_level + workspace_len(layouts.child(), policy)
}

/// Deepest policy whose [`workspace_len`] fits in `max_ws_elems`
/// elements — the graceful-degradation rule of the memory budget
/// ([`crate::config::MemoryBudget`]).
///
/// The ladder degrades in preference order:
///
/// 1. **Degrade the schedule tier** (standard → low-mem → in-place, up
///    to `max_sched`). A cheaper Boyer et al. linearization shrinks
///    every staged level's temporaries while keeping the full Strassen
///    arithmetic, every fused level, the parallel shape, *and* the
///    kernel — the paper's memory/speed trade at its cheapest.
/// 2. **Fuse more levels.** Fusing an innermost level removes its staged
///    S/T slots without giving up any Strassen arithmetic, so it is
///    always tried before dropping depth.
/// 3. **Raise `strassen_min`** one padded recursion level at a time, so
///    one more level of the tree runs the workspace-free conventional
///    Morton recursion instead of the (staged) Strassen step; the
///    maximal schedule degradation and fuse are kept while depth drops.
///    `workspace_len` is monotone non-increasing in `strassen_min` at
///    fixed fuse, so the first fit is the deepest.
/// 4. **Fully conventional** (`strassen_min = usize::MAX`).
/// 5. **Swap the kernel for Blocked**, the workspace-free last resort.
///
/// With `max_ws_elems == 0` the returned policy disables the Strassen
/// step entirely (still a correct multiply, just conventional).
pub fn budget_capped_policy(
    layouts: NodeLayouts,
    base: ExecPolicy,
    max_ws_elems: usize,
) -> ExecPolicy {
    budget_capped_policy_with_tier_cap(layouts, base, max_ws_elems, Schedule::InPlace)
}

/// [`budget_capped_policy`] with the schedule-tier rung clamped to
/// `max_sched`. Shared-reference entry points (the one-shot
/// [`try_strassen_mul`] wrapper, `modgemm_premorton`) cannot run the
/// input-overwriting tier, so they cap the ladder at
/// [`Schedule::LowMem`].
pub fn budget_capped_policy_with_tier_cap(
    layouts: NodeLayouts,
    base: ExecPolicy,
    max_ws_elems: usize,
    max_sched: Schedule,
) -> ExecPolicy {
    if workspace_len(layouts, base) <= max_ws_elems {
        return base;
    }
    // Rung 1: degrade the schedule tier before anything else. Only the
    // Winograd recurrences have the extra linearizations.
    let mut deepest_sched = base.schedule;
    if base.variant == Variant::Winograd {
        for sched in Schedule::ALL {
            if sched <= base.schedule || sched > max_sched {
                continue;
            }
            deepest_sched = sched;
            let policy = ExecPolicy { schedule: sched, ..base };
            if workspace_len(layouts, policy) <= max_ws_elems {
                return policy;
            }
        }
    }
    // Rungs 2+ degrade from the most memory-frugal schedule the caller
    // permits: keeping the cheap tier while fuse climbs and depth drops
    // preserves the most Strassen arithmetic per byte.
    let base = ExecPolicy { schedule: deepest_sched, ..base };
    // Rung 2: fuse additional innermost levels before sacrificing depth.
    let max_fuse = crate::fuse::MAX_FUSE.min(crate::counts::strassen_levels(layouts, base));
    for fuse in (base.fuse + 1)..=max_fuse {
        let policy = ExecPolicy { fuse, ..base };
        if workspace_len(layouts, policy) <= max_ws_elems {
            return policy;
        }
    }
    // Rungs 3+ degrade from the maximally fused shape.
    let base = ExecPolicy { fuse: base.fuse.max(max_fuse), ..base };
    let (m, k, n) = layouts.dims();
    let dmin = m.min(k).min(n);
    // Permitting exactly `lv` Strassen levels: the node at level `j` has
    // minimum dimension `dmin >> j` (padded dims are `tile << depth`), so
    // `strassen_min = dmin >> lv` admits levels `0..lv` and hands level
    // `lv` and below to the conventional recursion.
    for lv in (1..=layouts.a.depth).rev() {
        let policy = ExecPolicy { strassen_min: base.strassen_min.max(dmin >> lv), ..base };
        if workspace_len(layouts, policy) <= max_ws_elems {
            return policy;
        }
    }
    let conventional = ExecPolicy { strassen_min: usize::MAX, ..base };
    if workspace_len(layouts, conventional) <= max_ws_elems {
        return conventional;
    }
    // Even the single leaf packing slot of a fully conventional run
    // exceeds the budget: the last rung of the degradation ladder swaps
    // the kernel for the workspace-free blocked multiply.
    ExecPolicy { kernel: KernelKind::Blocked, ..conventional }
}

/// Wraps a contiguous Morton leaf tile as a column-major view.
#[inline]
fn tile_ref<'t, S: Scalar>(buf: &'t [S], l: &MortonLayout) -> MatRef<'t, S> {
    debug_assert_eq!(l.depth, 0);
    MatRef::from_slice(buf, l.tile_rows, l.tile_cols, l.tile_rows)
}

/// [`morton_mul_add_with`] on a caller-provided leaf packing workspace —
/// the allocation-free form the plan interpreter calls with the arena's
/// tail slot. `ws` must hold at least the kernel's
/// [`modgemm_mat::KernelKind::pack_len`] for the leaf tile shape (zero
/// for non-packing kernels); its contents are clobbered. The leaves run
/// sequentially, so one slot is reused by every leaf of the subtree.
///
/// The eight recursive calls follow the operand-reuse ordering of Frens &
/// Wise (PPoPP'97): consecutive calls share either an `A` or a `B`
/// operand, improving cache reuse of the just-touched subtree.
pub fn morton_mul_add_with_ws<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    kernel: KernelKind,
    ws: &mut [S],
) {
    debug_assert_eq!(a.len(), layouts.a.len());
    debug_assert_eq!(b.len(), layouts.b.len());
    debug_assert_eq!(c.len(), layouts.c.len());

    if layouts.a.depth == 0 {
        let av = tile_ref(a, &layouts.a);
        let bv = tile_ref(b, &layouts.b);
        let cv =
            MatMut::from_slice(c, layouts.c.tile_rows, layouts.c.tile_cols, layouts.c.tile_rows);
        kernel.mul_add_in(av, bv, cv, ws);
        return;
    }

    let ch = layouts.child();
    let (qa, qb, qc) =
        (layouts.a.quadrant_len(), layouts.b.quadrant_len(), layouts.c.quadrant_len());
    let aq = |i: usize| &a[i * qa..(i + 1) * qa];
    let bq = |i: usize| &b[i * qb..(i + 1) * qb];
    let (c11, rest) = c.split_at_mut(qc);
    let (c12, rest) = rest.split_at_mut(qc);
    let (c21, c22) = rest.split_at_mut(qc);

    // Quadrant indices: 0 = NW(11), 1 = NE(12), 2 = SW(21), 3 = SE(22).
    morton_mul_add_with_ws(aq(0), bq(0), c11, ch, kernel, ws); // C11 += A11·B11
    morton_mul_add_with_ws(aq(0), bq(1), c12, ch, kernel, ws); // C12 += A11·B12
    morton_mul_add_with_ws(aq(1), bq(3), c12, ch, kernel, ws); // C12 += A12·B22
    morton_mul_add_with_ws(aq(1), bq(2), c11, ch, kernel, ws); // C11 += A12·B21
    morton_mul_add_with_ws(aq(3), bq(2), c21, ch, kernel, ws); // C21 += A22·B21
    morton_mul_add_with_ws(aq(3), bq(3), c22, ch, kernel, ws); // C22 += A22·B22
    morton_mul_add_with_ws(aq(2), bq(1), c22, ch, kernel, ws); // C22 += A21·B12
    morton_mul_add_with_ws(aq(2), bq(0), c21, ch, kernel, ws); // C21 += A21·B11
}

/// [`morton_mul_add`] with an explicit leaf kernel — the form the
/// plan/execute machinery threads its plan-time [`KernelKind`] through.
/// One-shot form: allocates the leaf packing slot itself when the kernel
/// needs one (planned execution uses [`morton_mul_add_with_ws`] on the
/// arena tail instead).
pub fn morton_mul_add_with<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    kernel: KernelKind,
) {
    let mut pack =
        vec![
            S::ZERO;
            kernel.pack_len(layouts.a.tile_rows, layouts.a.tile_cols, layouts.b.tile_cols)
        ];
    morton_mul_add_with_ws(a, b, c, layouts, kernel, &mut pack);
}

/// `C += A·B` by quadrant recursion over Morton buffers with the default
/// blocked leaf kernel — the conventional-arithmetic multiply used below
/// the truncation point.
pub fn morton_mul_add<S: Scalar>(a: &[S], b: &[S], c: &mut [S], layouts: NodeLayouts) {
    morton_mul_add_with(a, b, c, layouts, KernelKind::Blocked);
}

/// [`morton_mul`] with an explicit leaf kernel (allocates the leaf
/// packing slot itself when the kernel needs one).
pub fn morton_mul_with<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    kernel: KernelKind,
) {
    c.fill(S::ZERO);
    morton_mul_add_with(a, b, c, layouts, kernel);
}

/// [`morton_mul_with`] on a caller-provided leaf packing workspace (see
/// [`morton_mul_add_with_ws`]) — the allocation-free overwrite form.
pub fn morton_mul_with_ws<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    kernel: KernelKind,
    ws: &mut [S],
) {
    c.fill(S::ZERO);
    morton_mul_add_with_ws(a, b, c, layouts, kernel, ws);
}

/// `C = A·B` (overwrite) by conventional quadrant recursion.
pub fn morton_mul<S: Scalar>(a: &[S], b: &[S], c: &mut [S], layouts: NodeLayouts) {
    morton_mul_with(a, b, c, layouts, KernelKind::Blocked);
}

/// Fallible core of [`strassen_mul`]: `C = A·B` over Morton buffers with
/// the Strassen-Winograd recursion truncated per `policy`, reporting
/// malformed buffers as typed errors instead of panicking.
///
/// `ws` must have at least [`workspace_len`] elements
/// ([`GemmError::WorkspaceTooSmall`] otherwise); its contents are
/// clobbered.
pub fn try_strassen_mul<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    ws: &mut [S],
    policy: ExecPolicy,
) -> Result<(), GemmError> {
    try_strassen_mul_with_sink(a, b, c, layouts, ws, policy, &mut NoopSink)
}

/// [`try_strassen_mul`] reporting execution metrics through `sink`
/// (see [`crate::metrics`]): plan facts (modeled flops, levels taken),
/// the workspace reservation, and exclusive per-level wall time. With
/// [`NoopSink`] the instrumentation compiles out entirely and the
/// product is bit-identical.
///
/// Internally this flattens the per-level schedule into a stack-held
/// [`LevelPlan`] list and runs the shared [`mod@crate::plan`] interpreter —
/// the same code path a precompiled [`crate::GemmPlan`] executes.
pub fn try_strassen_mul_with_sink<S: Scalar, K: MetricsSink>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    ws: &mut [S],
    policy: ExecPolicy,
    sink: &mut K,
) -> Result<(), GemmError> {
    if policy.sched().overwrites_inputs() {
        return Err(GemmError::InvalidConfig {
            reason: "the in-place schedule overwrites its operands; \
                     use try_strassen_mul_mut (or a planned execution)",
        });
    }
    check_buffers(a.len(), b.len(), c.len(), layouts)?;
    let needed = workspace_len(layouts, policy);
    if ws.len() < needed {
        return Err(GemmError::WorkspaceTooSmall { needed, got: ws.len() });
    }
    record_entry_facts::<S, K>(layouts, policy, needed, sink);
    let mut buf = [LevelPlan::EMPTY; MAX_LEVELS];
    let count = fill_levels(&mut buf, layouts, policy);
    let peak = crate::plan::exec_levels(
        a,
        b,
        c,
        layouts,
        &buf[..count],
        0,
        &mut ws[..needed],
        policy,
        sink,
    );
    debug_assert_eq!(peak, needed, "measured workspace high-water mark vs closed form");
    if K::ENABLED {
        sink.record_workspace_used(peak, peak * core::mem::size_of::<S>());
    }
    Ok(())
}

/// [`try_strassen_mul`] over *mutable* A/B operands — the entry point
/// that supports every schedule tier, including the input-overwriting
/// [`Schedule::InPlace`] (whose restores leave `a`/`b` holding their
/// original values on return: bit-exact on integers, within rounding
/// error on floats).
pub fn try_strassen_mul_mut<S: Scalar>(
    a: &mut [S],
    b: &mut [S],
    c: &mut [S],
    layouts: NodeLayouts,
    ws: &mut [S],
    policy: ExecPolicy,
) -> Result<(), GemmError> {
    try_strassen_mul_mut_with_sink(a, b, c, layouts, ws, policy, &mut NoopSink)
}

/// [`try_strassen_mul_mut`] reporting execution metrics through `sink`.
pub fn try_strassen_mul_mut_with_sink<S: Scalar, K: MetricsSink>(
    a: &mut [S],
    b: &mut [S],
    c: &mut [S],
    layouts: NodeLayouts,
    ws: &mut [S],
    policy: ExecPolicy,
    sink: &mut K,
) -> Result<(), GemmError> {
    check_buffers(a.len(), b.len(), c.len(), layouts)?;
    let needed = workspace_len(layouts, policy);
    if ws.len() < needed {
        return Err(GemmError::WorkspaceTooSmall { needed, got: ws.len() });
    }
    record_entry_facts::<S, K>(layouts, policy, needed, sink);
    let mut buf = [LevelPlan::EMPTY; MAX_LEVELS];
    let count = fill_levels(&mut buf, layouts, policy);
    let peak = crate::plan::exec_levels_mut(
        a,
        b,
        c,
        layouts,
        &buf[..count],
        0,
        &mut ws[..needed],
        policy,
        sink,
    );
    debug_assert_eq!(peak, needed, "measured workspace high-water mark vs closed form");
    if K::ENABLED {
        sink.record_workspace_used(peak, peak * core::mem::size_of::<S>());
    }
    Ok(())
}

/// Records the plan-level facts every one-shot entry point reports.
fn record_entry_facts<S: Scalar, K: MetricsSink>(
    layouts: NodeLayouts,
    policy: ExecPolicy,
    needed: usize,
    sink: &mut K,
) {
    if !K::ENABLED {
        return;
    }
    let (m, k, n) = layouts.dims();
    sink.record_plan(PlanFacts {
        padded: (m, k, n),
        depth: layouts.a.depth,
        strassen_levels: crate::counts::strassen_levels(layouts, policy),
        fused_levels: fused_levels(layouts, policy),
        schedule: policy.sched(),
        flops: crate::counts::strassen_flops(layouts, policy),
        conventional_flops: crate::counts::conventional_flops(m, k, n),
    });
    sink.record_workspace(needed, needed * core::mem::size_of::<S>());
    let (tm, tk, tn) = (layouts.a.tile_rows, layouts.a.tile_cols, layouts.b.tile_cols);
    sink.record_kernel(policy.kernel.resolve(tm, tk, tn));
    sink.record_bytes_packed(crate::counts::packed_bytes(
        layouts,
        policy,
        core::mem::size_of::<S>(),
    ));
}

/// Validates the three Morton buffer lengths against `layouts`.
pub(crate) fn check_buffers(
    a_len: usize,
    b_len: usize,
    c_len: usize,
    layouts: NodeLayouts,
) -> Result<(), GemmError> {
    for (operand, needed, got) in [
        (Operand::A, layouts.a.len(), a_len),
        (Operand::B, layouts.b.len(), b_len),
        (Operand::C, layouts.c.len(), c_len),
    ] {
        if needed != got {
            return Err(GemmError::BufferLenMismatch { operand, needed, got });
        }
    }
    Ok(())
}

/// `C = A·B` over Morton buffers with the Strassen-Winograd recursion
/// truncated per `policy`.
///
/// `ws` must have at least [`workspace_len`] elements; its contents are
/// clobbered.
///
/// # Panics
/// On the conditions [`try_strassen_mul`] reports as errors.
#[track_caller]
pub fn strassen_mul<S: Scalar>(
    a: &[S],
    b: &[S],
    c: &mut [S],
    layouts: NodeLayouts,
    ws: &mut [S],
    policy: ExecPolicy,
) {
    if let Err(e) = try_strassen_mul(a, b, c, layouts, ws, policy) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modgemm_mat::gen::random_matrix;
    use modgemm_mat::naive::naive_product;
    use modgemm_mat::norms::assert_matrix_eq;
    use modgemm_mat::view::Op;
    use modgemm_mat::Matrix;
    use modgemm_morton::convert::{from_morton, to_morton};

    /// Runs strassen_mul on exact-fit Morton layouts and unpacks.
    fn run<S: Scalar>(
        a: &Matrix<S>,
        b: &Matrix<S>,
        tm: usize,
        tk: usize,
        tn: usize,
        depth: usize,
        policy: ExecPolicy,
    ) -> Matrix<S> {
        let la = MortonLayout::new(tm, tk, depth);
        let lb = MortonLayout::new(tk, tn, depth);
        let lc = MortonLayout::new(tm, tn, depth);
        let layouts = NodeLayouts::new(la, lb, lc);
        let mut ab = vec![S::ZERO; la.len()];
        let mut bb = vec![S::ZERO; lb.len()];
        let mut cb = vec![S::ZERO; lc.len()];
        to_morton(a.view(), Op::NoTrans, &la, &mut ab);
        to_morton(b.view(), Op::NoTrans, &lb, &mut bb);
        let mut ws = vec![S::ZERO; workspace_len(layouts, policy)];
        // The mut entry point supports every schedule tier (including
        // in-place); shared-ref tiers go through the same interpreter.
        try_strassen_mul_mut(&mut ab, &mut bb, &mut cb, layouts, &mut ws, policy).unwrap();
        let mut out = Matrix::zeros(a.rows(), b.cols());
        from_morton(&cb, &lc, out.view_mut());
        out
    }

    #[test]
    fn exact_on_integers_depth_3() {
        let a: Matrix<i64> = random_matrix(24, 24, 1);
        let b: Matrix<i64> = random_matrix(24, 24, 2);
        let got = run(&a, &b, 3, 3, 3, 3, ExecPolicy::default());
        assert_eq!(got, naive_product(&a, &b));
    }

    #[test]
    fn exact_with_rectangular_tiles() {
        // m=20 (tile 5), k=12 (tile 3), n=28 (tile 7), depth 2.
        let a: Matrix<i64> = random_matrix(20, 12, 3);
        let b: Matrix<i64> = random_matrix(12, 28, 4);
        let got = run(&a, &b, 5, 3, 7, 2, ExecPolicy::default());
        assert_eq!(got, naive_product(&a, &b));
    }

    #[test]
    fn exact_with_padding() {
        // Logical 21x21 inside padded 24x24 (tile 3, depth 3).
        let a: Matrix<i64> = random_matrix(21, 21, 5);
        let b: Matrix<i64> = random_matrix(21, 21, 6);
        let got = run(&a, &b, 3, 3, 3, 3, ExecPolicy::default());
        assert_eq!(got, naive_product(&a, &b));
    }

    #[test]
    fn depth_zero_is_plain_tile_multiply() {
        let a: Matrix<i64> = random_matrix(9, 7, 7);
        let b: Matrix<i64> = random_matrix(7, 11, 8);
        let got = run(&a, &b, 9, 7, 11, 0, ExecPolicy::default());
        assert_eq!(got, naive_product(&a, &b));
    }

    #[test]
    fn truncation_threshold_switches_to_conventional() {
        let a: Matrix<i64> = random_matrix(32, 32, 9);
        let b: Matrix<i64> = random_matrix(32, 32, 10);
        // strassen_min = 16: the 32-node applies Strassen, the 16-children
        // fall to the conventional Morton recursion.
        let got = run(&a, &b, 4, 4, 4, 3, ExecPolicy { strassen_min: 16, ..Default::default() });
        assert_eq!(got, naive_product(&a, &b));
        // strassen_min huge: pure conventional path.
        let got =
            run(&a, &b, 4, 4, 4, 3, ExecPolicy { strassen_min: 1 << 20, ..Default::default() });
        assert_eq!(got, naive_product(&a, &b));
    }

    #[test]
    fn float_result_within_tolerance_f64_and_f32() {
        let a: Matrix<f64> = random_matrix(40, 40, 11);
        let b: Matrix<f64> = random_matrix(40, 40, 12);
        let got = run(&a, &b, 5, 5, 5, 3, ExecPolicy::default());
        let expect = naive_product(&a, &b);
        assert_matrix_eq(got.view(), expect.view(), 40);

        let a: Matrix<f32> = random_matrix(40, 40, 13);
        let b: Matrix<f32> = random_matrix(40, 40, 14);
        let got = run(&a, &b, 5, 5, 5, 3, ExecPolicy::default());
        let expect = naive_product(&a, &b);
        assert_matrix_eq(got.view(), expect.view(), 40);
    }

    #[test]
    fn morton_mul_matches_naive() {
        let la = MortonLayout::new(3, 4, 2);
        let lb = MortonLayout::new(4, 5, 2);
        let lc = MortonLayout::new(3, 5, 2);
        let layouts = NodeLayouts::new(la, lb, lc);
        let a: Matrix<i64> = random_matrix(la.rows(), la.cols(), 15);
        let b: Matrix<i64> = random_matrix(lb.rows(), lb.cols(), 16);
        let mut ab = vec![0; la.len()];
        let mut bb = vec![0; lb.len()];
        let mut cb = vec![0; lc.len()];
        to_morton(a.view(), Op::NoTrans, &la, &mut ab);
        to_morton(b.view(), Op::NoTrans, &lb, &mut bb);
        morton_mul(&ab, &bb, &mut cb, layouts);
        let mut out = Matrix::zeros(lc.rows(), lc.cols());
        from_morton(&cb, &lc, out.view_mut());
        assert_eq!(out, naive_product(&a, &b));
    }

    #[test]
    fn workspace_len_closed_form_sanity() {
        // One Strassen level on an 8x8 of 4x4 tiles: qa=qb=qc=16, so
        // 16+16+32 = 64; children are leaves → 0.
        let l = MortonLayout::new(4, 4, 1);
        let layouts = NodeLayouts::new(l, l, l);
        assert_eq!(workspace_len(layouts, ExecPolicy::default()), 64);
        // Two levels: 256-quadrants... level 1: qa=qb=qc=64 → 256 total
        // per-level = 64*4 = 256; plus child level 64.
        let l2 = MortonLayout::new(4, 4, 2);
        let layouts2 = NodeLayouts::new(l2, l2, l2);
        assert_eq!(workspace_len(layouts2, ExecPolicy::default()), 4 * 64 + 64);
    }

    #[test]
    fn workspace_len_per_schedule_tier_closed_forms() {
        // Depth 1, q = 16: standard 4q, low-mem 3q, in-place q.
        let l = MortonLayout::new(4, 4, 1);
        let layouts = NodeLayouts::new(l, l, l);
        let tier = |s| ExecPolicy { schedule: s, ..Default::default() };
        assert_eq!(workspace_len(layouts, tier(Schedule::Standard)), 64);
        assert_eq!(workspace_len(layouts, tier(Schedule::LowMem)), 48);
        assert_eq!(workspace_len(layouts, tier(Schedule::InPlace)), 16);
        // Depth 2: the per-level slots sum down the recursion.
        let l2 = MortonLayout::new(4, 4, 2);
        let layouts2 = NodeLayouts::new(l2, l2, l2);
        assert_eq!(workspace_len(layouts2, tier(Schedule::Standard)), 4 * 64 + 4 * 16);
        assert_eq!(workspace_len(layouts2, tier(Schedule::LowMem)), 3 * 64 + 3 * 16);
        assert_eq!(workspace_len(layouts2, tier(Schedule::InPlace)), 64 + 16);
        // The Strassen variant normalizes every tier to Standard.
        for s in Schedule::ALL {
            let p = ExecPolicy { variant: Variant::Strassen, schedule: s, ..Default::default() };
            assert_eq!(p.sched(), Schedule::Standard);
            assert_eq!(workspace_len(layouts2, p), 4 * 64 + 4 * 16);
        }
    }

    #[test]
    fn lowmem_and_inplace_tiers_stay_exact_and_restore_inputs() {
        for schedule in [Schedule::LowMem, Schedule::InPlace] {
            for kernel in [KernelKind::Blocked, KernelKind::Packed] {
                let policy = ExecPolicy { schedule, kernel, ..Default::default() };
                let a: Matrix<i64> = random_matrix(24, 24, 90);
                let b: Matrix<i64> = random_matrix(24, 24, 91);
                let got = run(&a, &b, 3, 3, 3, 3, policy);
                assert_eq!(got, naive_product(&a, &b), "{schedule} {kernel}");
                // Rectangular tiles + padding.
                let a: Matrix<i64> = random_matrix(19, 11, 92);
                let b: Matrix<i64> = random_matrix(11, 27, 93);
                let got = run(&a, &b, 5, 3, 7, 2, policy);
                assert_eq!(got, naive_product(&a, &b), "{schedule} {kernel} ragged");
            }
        }
        // The in-place tier restores its operand buffers bit-exactly on
        // integers (checked on the raw Morton buffers, not the views).
        let la = MortonLayout::new(4, 4, 2);
        let layouts = NodeLayouts::new(la, la, la);
        let a: Matrix<i64> = random_matrix(16, 16, 94);
        let b: Matrix<i64> = random_matrix(16, 16, 95);
        let mut ab = vec![0i64; la.len()];
        let mut bb = vec![0i64; la.len()];
        let mut cb = vec![0i64; la.len()];
        to_morton(a.view(), Op::NoTrans, &la, &mut ab);
        to_morton(b.view(), Op::NoTrans, &la, &mut bb);
        let (a0, b0) = (ab.clone(), bb.clone());
        let policy = ExecPolicy { schedule: Schedule::InPlace, ..Default::default() };
        let mut ws = vec![0i64; workspace_len(layouts, policy)];
        try_strassen_mul_mut(&mut ab, &mut bb, &mut cb, layouts, &mut ws, policy).unwrap();
        assert_eq!(ab, a0, "A not restored");
        assert_eq!(bb, b0, "B not restored");
    }

    #[test]
    fn shared_ref_entry_rejects_in_place_schedule() {
        let l = MortonLayout::new(4, 4, 1);
        let layouts = NodeLayouts::new(l, l, l);
        let a = vec![0.0f64; l.len()];
        let b = vec![0.0f64; l.len()];
        let mut c = vec![0.0f64; l.len()];
        let policy = ExecPolicy { schedule: Schedule::InPlace, ..Default::default() };
        let mut ws = vec![0.0f64; workspace_len(layouts, policy)];
        assert!(matches!(
            try_strassen_mul(&a, &b, &mut c, layouts, &mut ws, policy),
            Err(GemmError::InvalidConfig { .. })
        ));
        // The low-mem tier preserves inputs, so the shared entry runs it.
        let policy = ExecPolicy { schedule: Schedule::LowMem, ..Default::default() };
        let mut ws = vec![0.0f64; workspace_len(layouts, policy)];
        assert_eq!(try_strassen_mul(&a, &b, &mut c, layouts, &mut ws, policy), Ok(()));
    }

    #[test]
    fn workspace_zero_when_strassen_disabled() {
        let l = MortonLayout::new(4, 4, 3);
        let layouts = NodeLayouts::new(l, l, l);
        assert_eq!(
            workspace_len(layouts, ExecPolicy { strassen_min: usize::MAX, ..Default::default() }),
            0
        );
    }

    #[test]
    fn workspace_includes_leaf_packing_slot_for_packed_kernels() {
        let l = MortonLayout::new(8, 8, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let blocked = ExecPolicy::default();
        let packed = ExecPolicy { kernel: KernelKind::Packed, ..Default::default() };
        let pack = leaf_pack_len(layouts, packed);
        assert_eq!(pack, KernelKind::Packed.pack_len(8, 8, 8));
        assert!(pack > 0);
        // The packing slot rides at the arena tail, at every truncation.
        for strassen_min in [0, 16, usize::MAX] {
            let b = ExecPolicy { strassen_min, ..blocked };
            let p = ExecPolicy { strassen_min, ..packed };
            assert_eq!(workspace_len(layouts, p), workspace_len(layouts, b) + pack);
        }
        assert_eq!(leaf_pack_len(layouts, blocked), 0, "non-packing kernels add nothing");
    }

    #[test]
    fn packed_kernel_policies_stay_exact() {
        let a: Matrix<i64> = random_matrix(24, 24, 60);
        let b: Matrix<i64> = random_matrix(24, 24, 61);
        for kernel in [KernelKind::Packed, KernelKind::Auto] {
            for strassen_min in [0, 16, usize::MAX] {
                let policy = ExecPolicy { kernel, strassen_min, ..Default::default() };
                let got = run(&a, &b, 3, 3, 3, 3, policy);
                assert_eq!(got, naive_product(&a, &b), "{kernel} min {strassen_min}");
            }
        }
    }

    #[test]
    fn packed_kernel_stays_within_tolerance_on_floats() {
        // Tile 8 = one full register tile, so the vectorized body (when
        // the host has one) covers the whole leaf.
        let a: Matrix<f64> = random_matrix(64, 64, 62);
        let b: Matrix<f64> = random_matrix(64, 64, 63);
        let policy = ExecPolicy { kernel: KernelKind::Packed, ..Default::default() };
        let got = run(&a, &b, 8, 8, 8, 3, policy);
        assert_matrix_eq(got.view(), naive_product(&a, &b).view(), 64);
    }

    #[test]
    fn budget_degrades_packed_kernel_to_blocked_as_last_resort() {
        let l = MortonLayout::new(8, 8, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let base = ExecPolicy { kernel: KernelKind::Packed, ..Default::default() };
        let capped = budget_capped_policy(layouts, base, 0);
        assert_eq!(capped.kernel, KernelKind::Blocked);
        assert_eq!(capped.strassen_min, usize::MAX);
        assert_eq!(workspace_len(layouts, capped), 0);
        // A budget that fits the packing slot keeps the packed kernel.
        let pack = leaf_pack_len(layouts, base);
        let capped = budget_capped_policy(layouts, base, pack);
        assert_eq!(capped.kernel, KernelKind::Packed);
        assert_eq!(workspace_len(layouts, capped), pack);
    }

    #[test]
    #[should_panic(expected = "workspace too small")]
    fn rejects_undersized_workspace() {
        let l = MortonLayout::new(4, 4, 1);
        let layouts = NodeLayouts::new(l, l, l);
        let a = vec![0.0f64; l.len()];
        let b = vec![0.0f64; l.len()];
        let mut c = vec![0.0f64; l.len()];
        let mut ws = vec![0.0f64; 10];
        strassen_mul(&a, &b, &mut c, layouts, &mut ws, ExecPolicy::default());
    }

    #[test]
    fn try_strassen_mul_reports_typed_errors() {
        let l = MortonLayout::new(4, 4, 1);
        let layouts = NodeLayouts::new(l, l, l);
        let a = vec![0.0f64; l.len()];
        let b = vec![0.0f64; l.len()];
        let mut c = vec![0.0f64; l.len()];
        let mut ws = vec![0.0f64; 10];
        assert_eq!(
            try_strassen_mul(&a, &b, &mut c, layouts, &mut ws, ExecPolicy::default()),
            Err(GemmError::WorkspaceTooSmall { needed: 64, got: 10 })
        );
        let short_a = vec![0.0f64; l.len() - 1];
        let mut ws = vec![0.0f64; 64];
        assert_eq!(
            try_strassen_mul(&short_a, &b, &mut c, layouts, &mut ws, ExecPolicy::default()),
            Err(GemmError::BufferLenMismatch {
                operand: Operand::A,
                needed: l.len(),
                got: l.len() - 1
            })
        );
        assert_eq!(
            try_strassen_mul(&a, &b, &mut c, layouts, &mut ws, ExecPolicy::default()),
            Ok(())
        );
    }

    #[test]
    fn budget_capping_drops_levels_until_it_fits() {
        let l = MortonLayout::new(4, 4, 3); // 32x32 of 4x4 tiles
        let layouts = NodeLayouts::new(l, l, l);
        let base = ExecPolicy::default();
        let full = workspace_len(layouts, base);
        let lowmem = workspace_len(layouts, ExecPolicy { schedule: Schedule::LowMem, ..base });
        let inplace = workspace_len(layouts, ExecPolicy { schedule: Schedule::InPlace, ..base });
        assert!(0 < inplace && inplace < lowmem && lowmem < full);

        // Unlimited budget: the base policy unchanged.
        assert_eq!(budget_capped_policy(layouts, base, usize::MAX), base);
        assert_eq!(budget_capped_policy(layouts, base, full), base);

        // One element short of full: the first rung degrades the
        // schedule tier — depth, fuse, and kernel all survive.
        let capped = budget_capped_policy(layouts, base, full - 1);
        assert_eq!(capped, ExecPolicy { schedule: Schedule::LowMem, ..base }, "schedule rung");
        let capped = budget_capped_policy(layouts, base, lowmem - 1);
        assert_eq!(capped, ExecPolicy { schedule: Schedule::InPlace, ..base }, "schedule rung");

        // Below the in-place footprint the ladder starts fusing
        // innermost levels, keeping the cheap tier and the full depth.
        let capped = budget_capped_policy(layouts, base, inplace - 1);
        assert_eq!(capped.schedule, Schedule::InPlace, "fuse rung keeps the cheap tier");
        assert!(capped.fuse > base.fuse, "fuse rung");
        assert_eq!(capped.strassen_min, base.strassen_min, "fuse rung keeps the depth");

        // Below the maximally fused in-place footprint the ladder must
        // start raising strassen_min while keeping fuse and tier.
        let fused_floor = workspace_len(
            layouts,
            ExecPolicy { fuse: crate::fuse::MAX_FUSE, schedule: Schedule::InPlace, ..base },
        );
        let capped = budget_capped_policy(layouts, base, fused_floor - 1);
        assert!(capped.strassen_min > base.strassen_min, "recursion rung");
        assert_eq!(capped.fuse, crate::fuse::MAX_FUSE, "recursion rung keeps the fuse");
        assert_eq!(capped.schedule, Schedule::InPlace, "recursion rung keeps the tier");

        // Zero budget: Strassen fully disabled, workspace-free.
        let none = budget_capped_policy(layouts, base, 0);
        assert_eq!(workspace_len(layouts, none), 0);

        // Every possible budget yields a fitting policy (monotone sweep).
        for budget in 0..=full {
            let p = budget_capped_policy(layouts, base, budget);
            assert!(workspace_len(layouts, p) <= budget, "budget {budget}");
        }
    }

    #[test]
    fn tier_cap_keeps_shared_ref_paths_out_of_in_place() {
        let l = MortonLayout::new(4, 4, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let base = ExecPolicy::default();
        let lowmem = workspace_len(layouts, ExecPolicy { schedule: Schedule::LowMem, ..base });
        // A budget only the in-place tier could satisfy at full depth:
        // the LowMem-capped ladder must degrade something else instead.
        let capped =
            budget_capped_policy_with_tier_cap(layouts, base, lowmem - 1, Schedule::LowMem);
        assert_ne!(capped.schedule, Schedule::InPlace);
        assert!(workspace_len(layouts, capped) < lowmem);
        // Every budget still yields a fitting, never-in-place policy.
        let full = workspace_len(layouts, base);
        for budget in 0..=full {
            let p = budget_capped_policy_with_tier_cap(layouts, base, budget, Schedule::LowMem);
            assert!(workspace_len(layouts, p) <= budget, "budget {budget}");
            assert_ne!(p.schedule, Schedule::InPlace, "budget {budget}");
        }
    }

    #[test]
    fn strassen_variant_skips_the_schedule_rung() {
        let l = MortonLayout::new(4, 4, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let base = ExecPolicy { variant: Variant::Strassen, ..Default::default() };
        let full = workspace_len(layouts, base);
        let capped = budget_capped_policy(layouts, base, full - 1);
        // No low-memory linearization exists for the original Strassen
        // recurrences: the first effective rung is the fuse climb.
        assert_eq!(capped.schedule, Schedule::Standard);
        assert!(capped.fuse > base.fuse || capped.strassen_min > base.strassen_min);
    }

    #[test]
    fn fused_policies_shrink_the_workspace() {
        // Strictly smaller arena than the staged plan at the same
        // recursion depth, for every fuse >= 1 (acceptance criterion).
        for kernel in [KernelKind::Blocked, KernelKind::Packed] {
            let l = MortonLayout::new(8, 8, 3);
            let layouts = NodeLayouts::new(l, l, l);
            let staged = ExecPolicy { kernel, ..Default::default() };
            let mut prev = workspace_len(layouts, staged);
            for fuse in 1..=crate::fuse::MAX_FUSE {
                let ws = workspace_len(layouts, ExecPolicy { fuse, ..staged });
                assert!(ws < prev, "{kernel} fuse {fuse}: {ws} >= {prev}");
                prev = ws;
            }
        }
        // The closed form: each fused level removes its qa+qb+2qc staged
        // slots; a fused Packed terminal reuses the same packing slot.
        let l = MortonLayout::new(8, 8, 2);
        let layouts = NodeLayouts::new(l, l, l);
        let packed = ExecPolicy { kernel: KernelKind::Packed, ..Default::default() };
        let q = l.quadrant_len();
        let staged_slots = |levels: usize| -> usize {
            // Level j of the recursion has quadrant_len q / 4^j.
            (0..levels).map(|j| 4 * (q >> (2 * j))).sum()
        };
        assert_eq!(
            workspace_len(layouts, ExecPolicy { fuse: 1, ..packed }),
            staged_slots(1) + leaf_pack_len(layouts, packed)
        );
        assert_eq!(
            workspace_len(layouts, ExecPolicy { fuse: 2, ..packed }),
            leaf_pack_len(layouts, packed)
        );
    }

    #[test]
    fn budget_prefers_schedule_then_fuse_over_dropping_depth() {
        // The pinned degradation ladder: schedule tier first, then fuse,
        // then recursion depth, then the kernel swap.
        let l = MortonLayout::new(8, 8, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let base = ExecPolicy { kernel: KernelKind::Packed, ..Default::default() };

        // A budget that one fused level would satisfy is *also*
        // satisfied by the cheaper low-mem tier — the schedule rung wins
        // and the fuse (and everything else) survives untouched.
        let one_fused = workspace_len(layouts, ExecPolicy { fuse: 1, ..base });
        let lowmem = workspace_len(layouts, ExecPolicy { schedule: Schedule::LowMem, ..base });
        assert!(lowmem <= one_fused, "low-mem beats one fused level on this shape");
        let capped = budget_capped_policy(layouts, base, one_fused);
        assert_eq!(capped, ExecPolicy { schedule: Schedule::LowMem, ..base }, "schedule rung");

        // Once even the in-place tier overflows, the fuse rung fires —
        // on the in-place tier, with depth intact.
        let inplace = workspace_len(layouts, ExecPolicy { schedule: Schedule::InPlace, ..base });
        let capped = budget_capped_policy(layouts, base, inplace - 1);
        assert_eq!(capped.schedule, Schedule::InPlace, "fuse rung keeps the tier");
        assert!(capped.fuse > base.fuse, "fuse rung");
        assert_eq!(capped.strassen_min, base.strassen_min, "fuse rung keeps the depth");
        assert_eq!(capped.kernel, KernelKind::Packed, "fuse rung keeps the kernel");

        // Budget below even the conventional packing slot: kernel swap.
        let capped = budget_capped_policy(layouts, base, 0);
        assert_eq!(capped.kernel, KernelKind::Blocked);
        assert_eq!(capped.strassen_min, usize::MAX);
    }

    #[test]
    fn budget_capped_policies_stay_correct() {
        let l = MortonLayout::new(4, 4, 3);
        let layouts = NodeLayouts::new(l, l, l);
        let base = ExecPolicy::default();
        let full = workspace_len(layouts, base);
        let a: Matrix<i64> = random_matrix(32, 32, 77);
        let b: Matrix<i64> = random_matrix(32, 32, 78);
        let expect = naive_product(&a, &b);
        for budget in [0, full / 4, full / 2, full] {
            let policy = budget_capped_policy(layouts, base, budget);
            let got = run(&a, &b, 4, 4, 4, 3, policy);
            assert_eq!(got, expect, "budget {budget}");
        }
    }

    #[test]
    fn original_strassen_variant_is_exact() {
        let policy = ExecPolicy { variant: Variant::Strassen, ..Default::default() };
        let a: Matrix<i64> = random_matrix(24, 24, 40);
        let b: Matrix<i64> = random_matrix(24, 24, 41);
        let got = run(&a, &b, 3, 3, 3, 3, policy);
        assert_eq!(got, naive_product(&a, &b));
        // Rectangular tiles + padding through the original schedule.
        let a: Matrix<i64> = random_matrix(19, 11, 42);
        let b: Matrix<i64> = random_matrix(11, 27, 43);
        let got = run(&a, &b, 5, 3, 7, 2, policy);
        assert_eq!(got, naive_product(&a, &b));
    }

    #[test]
    fn variants_agree_on_floats_within_tolerance() {
        let a: Matrix<f64> = random_matrix(40, 40, 50);
        let b: Matrix<f64> = random_matrix(40, 40, 51);
        let w = run(&a, &b, 5, 5, 5, 3, ExecPolicy::default());
        let s = run(
            &a,
            &b,
            5,
            5,
            5,
            3,
            ExecPolicy { variant: Variant::Strassen, ..Default::default() },
        );
        assert_matrix_eq(w.view(), s.view(), 40);
    }

    #[test]
    fn strassen_and_conventional_agree_on_floats() {
        let a: Matrix<f64> = random_matrix(48, 48, 30);
        let b: Matrix<f64> = random_matrix(48, 48, 31);
        let s = run(&a, &b, 6, 6, 6, 3, ExecPolicy::default());
        let c =
            run(&a, &b, 6, 6, 6, 3, ExecPolicy { strassen_min: usize::MAX, ..Default::default() });
        assert_matrix_eq(s.view(), c.view(), 48);
    }
}
