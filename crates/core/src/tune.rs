//! The I/O-guided autotuner's persistence and plan-selection layer.
//!
//! The paper picks its truncation points by padding-minimization alone,
//! but the real objective on a concrete machine is *data movement*
//! (Bilardi/De Stefani's I/O-complexity bounds), and the winning
//! (depth, kernel, blocking) combination is machine-dependent
//! (Huang et al.'s BLIS Strassen). This module closes the loop: the
//! `modgemm-tune` binary (crates/bench) sweeps the plan space —
//! truncation range, `strassen_min` (the Strassen-depth knob),
//! [`KernelKind`], thread count — through the bench timing machinery
//! (optionally through the deterministic cache simulator) and persists
//! the winners as a schema-versioned [`TuningProfile`]; plan compilation
//! ([`crate::GemmPlan::try_new`]) then consults the loaded profile before
//! falling back to the static heuristics.
//!
//! ## Profile location
//!
//! [`profile_path`] resolves, in order: the `MODGEMM_PROFILE` environment
//! variable, `$XDG_CACHE_HOME/modgemm/profile.json`, then
//! `$HOME/.cache/modgemm/profile.json`. The profile is loaded **once per
//! process** ([`global_profile`]) so every plan compiled under
//! [`TuningMode::Profile`] sees the same snapshot — this is what keeps
//! the [`crate::service::GemmService`] plan cache's config-keyed entries
//! correct while a profile is active.
//!
//! ## Precedence: config > profile > static heuristic
//!
//! A profile never overrides an explicit configuration choice. A knob
//! left at its default ("auto") value consults the profile; a knob moved
//! off its default wins. Concretely, a [`TunedChoice`] applies to:
//!
//! * `truncation` — only while the config holds the default
//!   `MinPadding(TileRange::PAPER)` policy;
//! * `strassen_min` — only while the config holds the default `0`;
//! * `leaf_kernel` — only for [`KernelKind::Auto`] (delegated selection
//!   is Auto's whole purpose; a pinned concrete kernel wins);
//! * `parallel_depth` / `threads` — only while the config holds the
//!   default `0` (auto);
//! * `fuse_depth` — only while the config holds the default
//!   [`FuseDepth::Auto`]; an explicit `Fixed(n)` wins.
//! * `batch_window` — only while the config holds the default `0`
//!   (auto: the batch executor derives the in-flight window from the
//!   thread count and memory budget); an explicit window wins.
//!
//! With no profile entry in range (or [`TuningMode::Off`]), everything
//! falls through to the static heuristics exactly as before — a profile
//! changes *which* plan is built, never *what* it computes, which the
//! `prop_tuning_equivalence` property suite pins on `i64`.
//!
//! ## Failure semantics
//!
//! A corrupt, truncated, or future-schema-version profile file is a
//! typed [`GemmError::InvalidConfig`], never a panic: `try_*` entry
//! points running under [`TuningMode::Profile`] surface it, and the
//! `modgemm-tune` binary exits nonzero with the reason. A *missing* file
//! at the default location is simply "no profile" (`Ok(None)`); a
//! missing file at an explicit `MODGEMM_PROFILE` path is an error — a
//! deliberately-pointed-at profile that cannot be read should fail
//! loudly.

use std::path::PathBuf;
use std::sync::OnceLock;

use modgemm_mat::KernelKind;
use modgemm_morton::tiling::TileRange;

use crate::config::{FuseDepth, ModgemmConfig, Truncation};
use crate::error::GemmError;

/// The profile schema version this build emits and understands. Loading
/// a profile with a *newer* version fails typed (forward compatibility
/// is refused, not guessed at), and so does an *older* one: version 2
/// added the `fuse_depth` knob, version 3 the `batch_window` knob, and
/// version 4 the `schedule` knob (the memory tier of the recursion-step
/// linearization) to every entry, and an older profile's recorded
/// winners were measured without those axes, so silently defaulting the
/// missing field would misrepresent the measurement. Re-running
/// `modgemm-tune` regenerates a current-schema profile.
pub const PROFILE_SCHEMA_VERSION: u64 = 4;

/// Environment variable overriding the profile location (takes
/// precedence over the `~/.cache/modgemm/profile.json` default).
pub const MODGEMM_PROFILE_ENV: &str = "MODGEMM_PROFILE";

// ---------------------------------------------------------------------------
// The tuned operating point and how plans consult it
// ---------------------------------------------------------------------------

/// One tuned operating point: the plan-space coordinates `modgemm-tune`
/// found fastest for a recorded problem shape.
///
/// All fields are plain `Copy` data so [`TuningMode::Forced`] keeps
/// [`ModgemmConfig`] `Copy + Eq` — and therefore usable as the service
/// plan-cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TunedChoice {
    /// Lower bound of the truncation tile range
    /// ([`Truncation::MinPadding`]).
    pub tile_min: usize,
    /// Upper bound of the truncation tile range.
    pub tile_max: usize,
    /// Hand over to the conventional Morton recursion once
    /// `min(m, k, n) ≤ strassen_min` — the Strassen-depth knob.
    pub strassen_min: usize,
    /// Leaf kernel to run ([`KernelKind`]; concrete kinds only in
    /// recorded profiles).
    pub kernel: KernelKind,
    /// Parallel DAG depth (`0` = serial).
    pub parallel_depth: usize,
    /// Pool worker count (`0` = resolve from the environment).
    pub threads: usize,
    /// Fused Strassen levels to pin ([`FuseDepth::Fixed`]), at most
    /// [`crate::fuse::MAX_FUSE`]. Applied only while the configuration
    /// leaves [`ModgemmConfig::fuse_depth`] at [`FuseDepth::Auto`].
    pub fuse_depth: usize,
    /// In-flight window for whole-batch execution
    /// ([`ModgemmConfig::batch_window`]; `0` = derive from the thread
    /// count and memory budget). Applied only while the configuration
    /// leaves `batch_window` at its default `0`.
    pub batch_window: usize,
    /// Memory tier of the recursion-step linearization to pin
    /// ([`crate::config::SchedulePolicy::Fixed`]). A tuner can find a
    /// frugal tier fastest when the shrunken working set stays
    /// cache-resident. Applied only while the configuration leaves
    /// [`ModgemmConfig::schedule`] at
    /// [`crate::config::SchedulePolicy::Auto`] and the variant has the
    /// tier (Winograd; standard applies everywhere).
    pub schedule: crate::schedule::Schedule,
}

impl TunedChoice {
    /// The static-heuristic operating point: every knob at the value the
    /// untuned pipeline would pick on its own.
    pub fn baseline() -> Self {
        Self {
            tile_min: TileRange::PAPER.min,
            tile_max: TileRange::PAPER.max,
            strassen_min: 0,
            kernel: KernelKind::Auto,
            parallel_depth: 0,
            threads: 0,
            fuse_depth: 0,
            batch_window: 0,
            schedule: crate::schedule::Schedule::Standard,
        }
    }

    /// Applies this choice to `cfg` under the config > profile > static
    /// precedence (see the module docs), returning the effective
    /// configuration plan compilation should use. `m × k × n` are the
    /// problem dimensions, used to resolve a kernel hint.
    pub fn apply_to(&self, cfg: &ModgemmConfig, m: usize, k: usize, n: usize) -> ModgemmConfig {
        let mut eff = *cfg;
        if cfg.truncation == Truncation::default() && self.tile_min >= 1 {
            eff.truncation = Truncation::MinPadding(TileRange {
                min: self.tile_min,
                max: self.tile_max.max(self.tile_min),
            });
        }
        if cfg.strassen_min == 0 {
            eff.strassen_min = self.strassen_min;
        }
        if cfg.leaf_kernel == KernelKind::Auto {
            eff.leaf_kernel = KernelKind::Auto.resolve_with_hint(Some(self.kernel), m, k, n);
        }
        if cfg.parallel_depth == 0 {
            eff.parallel_depth = self.parallel_depth;
        }
        if cfg.threads == 0 {
            eff.threads = self.threads;
        }
        if cfg.fuse_depth == FuseDepth::Auto {
            eff.fuse_depth = FuseDepth::Fixed(self.fuse_depth.min(crate::fuse::MAX_FUSE));
        }
        if cfg.batch_window == 0 {
            eff.batch_window = self.batch_window;
        }
        if cfg.schedule == crate::config::SchedulePolicy::Auto
            && (self.schedule == crate::schedule::Schedule::Standard
                || cfg.variant == crate::schedule::Variant::Winograd)
        {
            eff.schedule = crate::config::SchedulePolicy::Fixed(self.schedule);
        }
        eff
    }
}

/// How plan compilation consults tuning data — the
/// [`ModgemmConfig::tuning`] knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TuningMode {
    /// Never consult a profile: the static heuristics alone (the paper's
    /// setting, and the default).
    #[default]
    Off,
    /// Consult the process-global profile ([`global_profile`]) with a
    /// nearest-shape lookup; fall back to the static heuristics when no
    /// profile (or no entry) is available. A corrupt or future-schema
    /// profile file surfaces as [`GemmError::InvalidConfig`].
    Profile,
    /// Apply this exact operating point (still under the config >
    /// profile precedence), bypassing any profile file. The
    /// deterministic mode tests and benchmarks use.
    Forced(TunedChoice),
}

/// Resolves the effective configuration `cfg` implies for an
/// `m × k × n` problem: applies the forced choice or the profile's
/// nearest-shape entry per [`ModgemmConfig::tuning`], and reports
/// whether a tuned choice actually drove selection (the
/// `ExecMetrics::profile_hits` signal).
pub(crate) fn effective_config(
    cfg: &ModgemmConfig,
    m: usize,
    k: usize,
    n: usize,
) -> Result<(ModgemmConfig, bool), GemmError> {
    let choice = match cfg.tuning {
        TuningMode::Off => None,
        TuningMode::Forced(c) => Some(c),
        TuningMode::Profile => global_profile()?.and_then(|p| p.lookup(m, k, n)),
    };
    match choice {
        Some(c) => {
            let eff = c.apply_to(cfg, m, k, n);
            eff.validate().map_err(|_| GemmError::InvalidConfig {
                reason: "tuning choice produces a self-contradictory configuration",
            })?;
            Ok((eff, true))
        }
        None => Ok((*cfg, false)),
    }
}

// ---------------------------------------------------------------------------
// The persisted profile
// ---------------------------------------------------------------------------

/// One recorded shape → choice pair of a [`TuningProfile`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileEntry {
    /// Problem dimensions the choice was measured at.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// The winning operating point.
    pub choice: TunedChoice,
    /// The measured objective value (effective GFLOP/s for the timing
    /// objective; negated simulated misses for `--cachesim`, so larger
    /// is always better). Informational.
    pub score: f64,
}

impl ProfileEntry {
    /// Geometric-mean dimension — the 1-D coordinate the nearest-shape
    /// lookup orders entries by.
    fn gdim(&self) -> f64 {
        gdim(self.m, self.k, self.n)
    }
}

fn gdim(m: usize, k: usize, n: usize) -> f64 {
    ((m as f64) * (k as f64) * (n as f64)).cbrt()
}

/// A per-machine tuning profile: the schema-versioned, JSON-persisted
/// artifact `modgemm-tune` records and plan compilation consults.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningProfile {
    /// Schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Unix timestamp of the recording run.
    pub created_unix: u64,
    /// `std::env::consts::OS` of the recording host.
    pub os: String,
    /// `std::env::consts::ARCH` of the recording host.
    pub arch: String,
    /// CPU count of the recording host.
    pub num_cpus: usize,
    /// The sweep objective (`"min-time"` or `"cachesim-misses"`).
    pub objective: String,
    /// Recorded operating points, any order (lookup sorts internally).
    pub entries: Vec<ProfileEntry>,
}

impl TuningProfile {
    /// An empty profile stamped for the current host.
    pub fn new_for_host(objective: &str) -> Self {
        Self {
            schema_version: PROFILE_SCHEMA_VERSION,
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            num_cpus: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            objective: objective.to_string(),
            entries: Vec::new(),
        }
    }

    /// Nearest-shape lookup with interpolation between recorded sizes.
    ///
    /// Entries are ordered by geometric-mean dimension `∛(m·k·n)`. A
    /// query outside the recorded range clamps to the nearest endpoint;
    /// a query between two recorded sizes takes the discrete knobs
    /// (kernel, parallel depth, threads) from the *nearer* entry and
    /// linearly interpolates the numeric knobs (tile bounds,
    /// `strassen_min`), rounding to integers — so a 384-point between
    /// recorded 256 and 513 entries lands on a blend rather than a
    /// cliff. Returns `None` for an empty profile.
    pub fn lookup(&self, m: usize, k: usize, n: usize) -> Option<TunedChoice> {
        if self.entries.is_empty() {
            return None;
        }
        let g = gdim(m, k, n);
        let mut sorted: Vec<&ProfileEntry> = self.entries.iter().collect();
        sorted.sort_by(|a, b| a.gdim().total_cmp(&b.gdim()));
        let lo = sorted.iter().rev().find(|e| e.gdim() <= g);
        let hi = sorted.iter().find(|e| e.gdim() >= g);
        match (lo, hi) {
            (Some(lo), Some(hi)) if (lo.gdim() - hi.gdim()).abs() > f64::EPSILON => {
                let t = (g - lo.gdim()) / (hi.gdim() - lo.gdim());
                let near = if t <= 0.5 { lo } else { hi };
                let lerp = |a: usize, b: usize| -> usize {
                    ((a as f64) + t * (b as f64 - a as f64)).round() as usize
                };
                let tile_min = lerp(lo.choice.tile_min, hi.choice.tile_min).max(1);
                let tile_max = lerp(lo.choice.tile_max, hi.choice.tile_max).max(tile_min);
                Some(TunedChoice {
                    tile_min,
                    tile_max,
                    strassen_min: lerp(lo.choice.strassen_min, hi.choice.strassen_min),
                    kernel: near.choice.kernel,
                    parallel_depth: near.choice.parallel_depth,
                    threads: near.choice.threads,
                    fuse_depth: near.choice.fuse_depth,
                    batch_window: near.choice.batch_window,
                    schedule: near.choice.schedule,
                })
            }
            (Some(e), _) | (_, Some(e)) => Some(e.choice),
            (None, None) => unreachable!("non-empty sorted list has an endpoint"),
        }
    }

    /// Serializes the profile as pretty-printed JSON (stable key order,
    /// so committed profiles diff cleanly).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        s.push_str(&format!("  \"created_unix\": {},\n", self.created_unix));
        s.push_str(&format!(
            "  \"machine\": {{\"os\": {}, \"arch\": {}, \"num_cpus\": {}}},\n",
            json_str(&self.os),
            json_str(&self.arch),
            self.num_cpus
        ));
        s.push_str(&format!("  \"objective\": {},\n", json_str(&self.objective)));
        s.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"m\": {}, \"k\": {}, \"n\": {}, \"tile_min\": {}, \"tile_max\": {}, \
                 \"strassen_min\": {}, \"kernel\": {}, \"parallel_depth\": {}, \"threads\": {}, \
                 \"fuse_depth\": {}, \"batch_window\": {}, \"schedule\": {}, \"score\": {}}}",
                e.m,
                e.k,
                e.n,
                e.choice.tile_min,
                e.choice.tile_max,
                e.choice.strassen_min,
                json_str(&e.choice.kernel.to_string()),
                e.choice.parallel_depth,
                e.choice.threads,
                e.choice.fuse_depth,
                e.choice.batch_window,
                json_str(e.choice.schedule.name()),
                json_num(e.score),
            ));
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses a profile from JSON text. Corrupt or truncated input, a
    /// missing or non-numeric `schema_version`, a *future* schema
    /// version, and malformed entries all come back as typed
    /// [`GemmError::InvalidConfig`] — never a panic.
    pub fn from_json_str(text: &str) -> Result<Self, GemmError> {
        const BAD_JSON: GemmError =
            GemmError::InvalidConfig { reason: "tuning profile is not valid JSON" };
        let root = Jv::parse(text).map_err(|_| BAD_JSON)?;
        let obj = root.as_obj().ok_or(BAD_JSON)?;
        let num = |v: &Jv| v.as_f64();
        let version = get(obj, "schema_version").and_then(num).ok_or(GemmError::InvalidConfig {
            reason: "tuning profile lacks a numeric schema_version",
        })? as u64;
        if version > PROFILE_SCHEMA_VERSION {
            return Err(GemmError::InvalidConfig {
                reason: "tuning profile schema version is newer than this library understands",
            });
        }
        if version < PROFILE_SCHEMA_VERSION {
            return Err(GemmError::InvalidConfig {
                reason: "tuning profile schema version is outdated; re-run modgemm-tune to record \
                         a current profile",
            });
        }
        const BAD_ENTRY: GemmError =
            GemmError::InvalidConfig { reason: "tuning profile entry is malformed" };
        let machine = get(obj, "machine").and_then(Jv::as_obj);
        let mstr = |key: &str| -> String {
            machine
                .and_then(|m| get(m, key))
                .and_then(Jv::as_str)
                .map(str::to_string)
                .unwrap_or_default()
        };
        let mut entries = Vec::new();
        for e in get(obj, "entries").and_then(Jv::as_arr).ok_or(BAD_JSON)? {
            let eo = e.as_obj().ok_or(BAD_ENTRY)?;
            let u = |key: &str| -> Result<usize, GemmError> {
                get(eo, key).and_then(num).map(|x| x as usize).ok_or(BAD_ENTRY)
            };
            let kernel: KernelKind = get(eo, "kernel")
                .and_then(Jv::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or(GemmError::InvalidConfig {
                    reason: "tuning profile entry names an unknown kernel",
                })?;
            let entry = ProfileEntry {
                m: u("m")?,
                k: u("k")?,
                n: u("n")?,
                choice: TunedChoice {
                    tile_min: u("tile_min")?,
                    tile_max: u("tile_max")?,
                    strassen_min: u("strassen_min")?,
                    kernel,
                    parallel_depth: u("parallel_depth")?,
                    threads: u("threads")?,
                    fuse_depth: u("fuse_depth")?,
                    batch_window: u("batch_window")?,
                    schedule: get(eo, "schedule")
                        .and_then(Jv::as_str)
                        .and_then(|s| s.parse().ok())
                        .ok_or(GemmError::InvalidConfig {
                            reason: "tuning profile entry names an unknown schedule tier",
                        })?,
                },
                score: get(eo, "score").and_then(num).unwrap_or(0.0),
            };
            if entry.m == 0 || entry.k == 0 || entry.n == 0 {
                return Err(GemmError::InvalidConfig {
                    reason: "tuning profile entry has a zero problem dimension",
                });
            }
            if entry.choice.tile_min == 0 || entry.choice.tile_min > entry.choice.tile_max {
                return Err(GemmError::InvalidConfig {
                    reason: "tuning profile entry has an invalid tile range",
                });
            }
            if entry.choice.fuse_depth > crate::fuse::MAX_FUSE {
                return Err(GemmError::InvalidConfig {
                    reason: "tuning profile entry records an unsupported fuse depth",
                });
            }
            entries.push(entry);
        }
        Ok(Self {
            schema_version: version,
            created_unix: get(obj, "created_unix").and_then(num).unwrap_or(0.0) as u64,
            os: mstr("os"),
            arch: mstr("arch"),
            num_cpus: machine
                .and_then(|m| get(m, "num_cpus"))
                .and_then(num)
                .map(|x| x as usize)
                .unwrap_or(0),
            objective: get(obj, "objective").and_then(Jv::as_str).unwrap_or("min-time").to_string(),
            entries,
        })
    }

    /// Loads a profile from `path`. An unreadable file and unparsable
    /// contents are both typed [`GemmError::InvalidConfig`].
    pub fn load_from_path(path: &std::path::Path) -> Result<Self, GemmError> {
        let text = std::fs::read_to_string(path).map_err(|_| GemmError::InvalidConfig {
            reason: "tuning profile file is missing or unreadable",
        })?;
        Self::from_json_str(&text)
    }

    /// Writes the profile (pretty JSON) to `path`, creating parent
    /// directories as needed.
    pub fn save_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// The default profile recorded in `results/profile_default.json` and
/// compiled into the library — a last-resort embeddable profile for
/// hosts that have never run `modgemm-tune`. It is **not** loaded
/// automatically (tuned behaviour stays opt-in via
/// [`TuningMode::Profile`] plus an on-disk profile); callers that want
/// it can install it at [`profile_path`] themselves.
pub fn embedded_default() -> Result<TuningProfile, GemmError> {
    TuningProfile::from_json_str(include_str!("../../../results/profile_default.json"))
}

// ---------------------------------------------------------------------------
// Location and the process-global snapshot
// ---------------------------------------------------------------------------

/// Resolves the profile location: `MODGEMM_PROFILE` if set, else
/// `$XDG_CACHE_HOME/modgemm/profile.json`, else
/// `$HOME/.cache/modgemm/profile.json`, else `modgemm-profile.json` in
/// the working directory (last-resort for HOME-less environments).
pub fn profile_path() -> PathBuf {
    if let Some(p) = std::env::var_os(MODGEMM_PROFILE_ENV) {
        return PathBuf::from(p);
    }
    if let Some(cache) = std::env::var_os("XDG_CACHE_HOME").filter(|v| !v.is_empty()) {
        return PathBuf::from(cache).join("modgemm").join("profile.json");
    }
    if let Some(home) = std::env::var_os("HOME").filter(|v| !v.is_empty()) {
        return PathBuf::from(home).join(".cache").join("modgemm").join("profile.json");
    }
    PathBuf::from("modgemm-profile.json")
}

/// Loads the profile from [`profile_path`]. A missing file at the
/// *default* location is `Ok(None)` (no profile recorded yet); a missing
/// file at an explicit `MODGEMM_PROFILE` path, or unparsable contents
/// anywhere, is a typed [`GemmError::InvalidConfig`].
pub fn load_default() -> Result<Option<TuningProfile>, GemmError> {
    let explicit = std::env::var_os(MODGEMM_PROFILE_ENV).is_some();
    let path = profile_path();
    if !path.exists() {
        if explicit {
            return Err(GemmError::InvalidConfig {
                reason: "MODGEMM_PROFILE points at a missing profile file",
            });
        }
        return Ok(None);
    }
    TuningProfile::load_from_path(&path).map(Some)
}

static GLOBAL_PROFILE: OnceLock<Result<Option<TuningProfile>, GemmError>> = OnceLock::new();

/// The process-global profile snapshot [`TuningMode::Profile`] consults:
/// loaded from [`profile_path`] exactly once per process, so every plan
/// (and every service plan-cache entry) compiled in this process sees
/// the same tuning data. Load failures are sticky and re-surface on
/// every call — a corrupt profile cannot half-apply.
pub fn global_profile() -> Result<Option<&'static TuningProfile>, GemmError> {
    match GLOBAL_PROFILE.get_or_init(load_default) {
        Ok(opt) => Ok(opt.as_ref()),
        Err(e) => Err(e.clone()),
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON reader (the workspace vendors no serde; the experiments
// crate's JSON layer sits *above* core in the dependency graph, so the
// profile loader carries its own ~100-line subset parser)
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Jv {
    Null,
    // Parsed for JSON completeness; no profile field is boolean, so the
    // value itself is never consulted.
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Jv>),
    Obj(Vec<(String, Jv)>),
}

fn get<'v>(obj: &'v [(String, Jv)], key: &str) -> Option<&'v Jv> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Jv {
    fn as_obj(&self) -> Option<&[(String, Jv)]> {
        match self {
            Jv::Obj(o) => Some(o),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Jv]> {
        match self {
            Jv::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Jv::Num(x) => Some(*x),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Jv::Str(s) => Some(s),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Jv, ()> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(()); // trailing garbage
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(())
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Jv, ()> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut obj = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Jv::Obj(obj));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                obj.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Jv::Obj(obj));
                    }
                    _ => return Err(()),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Jv::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Jv::Arr(arr));
                    }
                    _ => return Err(()),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Jv::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Jv::Bool)
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Jv::Bool)
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Jv::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .filter(|x| x.is_finite())
                .map(Jv::Num)
                .ok_or(())
        }
        _ => Err(()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ()> {
    if b.get(*pos) != Some(&b'"') {
        return Err(());
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(()), // truncated mid-string
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or(())?;
                        let code =
                            u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| ())?, 16)
                                .map_err(|_| ())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(()),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = utf8_len(c);
                let bytes = b.get(*pos..*pos + len).ok_or(())?;
                out.push_str(std::str::from_utf8(bytes).map_err(|_| ())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains('-') || x.fract() != 0.0 {
            s
        } else {
            format!("{x:.1}")
        }
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> TuningProfile {
        TuningProfile {
            schema_version: PROFILE_SCHEMA_VERSION,
            created_unix: 1_754_600_000,
            os: "linux".into(),
            arch: "x86_64".into(),
            num_cpus: 4,
            objective: "min-time".into(),
            entries: vec![
                ProfileEntry {
                    m: 256,
                    k: 256,
                    n: 256,
                    choice: TunedChoice {
                        tile_min: 16,
                        tile_max: 64,
                        strassen_min: 0,
                        kernel: KernelKind::Packed,
                        parallel_depth: 0,
                        threads: 1,
                        fuse_depth: 2,
                        batch_window: 0,
                        schedule: crate::schedule::Schedule::Standard,
                    },
                    score: 3.5,
                },
                ProfileEntry {
                    m: 513,
                    k: 513,
                    n: 513,
                    choice: TunedChoice {
                        tile_min: 32,
                        tile_max: 64,
                        strassen_min: 64,
                        kernel: KernelKind::Blocked,
                        parallel_depth: 2,
                        threads: 4,
                        fuse_depth: 0,
                        batch_window: 4,
                        schedule: crate::schedule::Schedule::InPlace,
                    },
                    score: 2.9,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let p = sample_profile();
        let text = p.to_json();
        let back = TuningProfile::from_json_str(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn corrupt_and_truncated_profiles_fail_typed() {
        // The satellite fix: garbage must come back as InvalidConfig,
        // never a panic. The cases cover binary garbage, truncation at
        // several depths, wrong top-level types, and trailing garbage.
        let full = sample_profile().to_json();
        let mut bad: Vec<String> = vec![
            String::new(),
            "not json at all".into(),
            "\u{0}\u{1}\u{2}binary".into(),
            "{".into(),
            "{\"schema_version\":".into(),
            "[1, 2, 3]".into(),
            "42".into(),
            "{\"schema_version\": \"one\", \"entries\": []}".into(),
            "{\"entries\": []}".into(),
            format!("{full}trailing"),
            "{\"schema_version\": 4, \"entries\": [{\"m\": 0}]}".into(),
            "{\"schema_version\": 4, \"entries\": [7]}".into(),
            // Entry with an inverted tile range.
            "{\"schema_version\": 4, \"entries\": [{\"m\":8,\"k\":8,\"n\":8,\"tile_min\":64,\
             \"tile_max\":16,\"strassen_min\":0,\"kernel\":\"blocked\",\"parallel_depth\":0,\
             \"threads\":0,\"fuse_depth\":0,\"batch_window\":0,\"schedule\":\"standard\",\
             \"score\":1.0}]}"
                .into(),
            // Unknown kernel name.
            "{\"schema_version\": 4, \"entries\": [{\"m\":8,\"k\":8,\"n\":8,\"tile_min\":16,\
             \"tile_max\":64,\"strassen_min\":0,\"kernel\":\"turbo\",\"parallel_depth\":0,\
             \"threads\":0,\"fuse_depth\":0,\"batch_window\":0,\"schedule\":\"standard\",\
             \"score\":1.0}]}"
                .into(),
            // Entry missing the v2 fuse_depth field.
            "{\"schema_version\": 4, \"entries\": [{\"m\":8,\"k\":8,\"n\":8,\"tile_min\":16,\
             \"tile_max\":64,\"strassen_min\":0,\"kernel\":\"blocked\",\"parallel_depth\":0,\
             \"threads\":0,\"batch_window\":0,\"schedule\":\"standard\",\"score\":1.0}]}"
                .into(),
            // Entry missing the v3 batch_window field.
            "{\"schema_version\": 4, \"entries\": [{\"m\":8,\"k\":8,\"n\":8,\"tile_min\":16,\
             \"tile_max\":64,\"strassen_min\":0,\"kernel\":\"blocked\",\"parallel_depth\":0,\
             \"threads\":0,\"fuse_depth\":0,\"schedule\":\"standard\",\"score\":1.0}]}"
                .into(),
            // Entry missing the v4 schedule field.
            "{\"schema_version\": 4, \"entries\": [{\"m\":8,\"k\":8,\"n\":8,\"tile_min\":16,\
             \"tile_max\":64,\"strassen_min\":0,\"kernel\":\"blocked\",\"parallel_depth\":0,\
             \"threads\":0,\"fuse_depth\":0,\"batch_window\":0,\"score\":1.0}]}"
                .into(),
            // Entry naming an unknown schedule tier.
            "{\"schema_version\": 4, \"entries\": [{\"m\":8,\"k\":8,\"n\":8,\"tile_min\":16,\
             \"tile_max\":64,\"strassen_min\":0,\"kernel\":\"blocked\",\"parallel_depth\":0,\
             \"threads\":0,\"fuse_depth\":0,\"batch_window\":0,\"schedule\":\"psychic\",\
             \"score\":1.0}]}"
                .into(),
            // Entry recording a fuse depth beyond MAX_FUSE.
            "{\"schema_version\": 4, \"entries\": [{\"m\":8,\"k\":8,\"n\":8,\"tile_min\":16,\
             \"tile_max\":64,\"strassen_min\":0,\"kernel\":\"blocked\",\"parallel_depth\":0,\
             \"threads\":0,\"fuse_depth\":9,\"batch_window\":0,\"schedule\":\"standard\",\
             \"score\":1.0}]}"
                .into(),
        ];
        // Truncate the valid serialization at many byte offsets: every
        // prefix must fail typed (or parse, only for the degenerate
        // full-length case, which the loop excludes).
        for cut in (1..full.len() - 1).step_by(17) {
            if full.is_char_boundary(cut) {
                bad.push(full[..cut].to_string());
            }
        }
        for text in bad {
            match TuningProfile::from_json_str(&text) {
                Err(GemmError::InvalidConfig { .. }) => {}
                other => panic!("{text:?} must fail with InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn future_schema_version_fails_typed() {
        let text = "{\"schema_version\": 99, \"entries\": []}";
        match TuningProfile::from_json_str(text) {
            Err(GemmError::InvalidConfig { reason }) => {
                assert!(reason.contains("newer"), "{reason}");
            }
            other => panic!("future schema must be refused, got {other:?}"),
        }
        assert!(matches!(
            TuningProfile::from_json_str("{\"schema_version\": 0, \"entries\": []}"),
            Err(GemmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn outdated_schema_version_fails_typed() {
        // Version 1 predates the fuse_depth knob, version 2 the
        // batch_window knob, and version 3 the schedule knob: their
        // recorded winners were measured without those axes, so all are
        // refused typed rather than silently defaulted.
        for text in [
            "{\"schema_version\": 1, \"entries\": []}",
            "{\"schema_version\": 2, \"entries\": []}",
            "{\"schema_version\": 3, \"entries\": []}",
        ] {
            match TuningProfile::from_json_str(text) {
                Err(GemmError::InvalidConfig { reason }) => {
                    assert!(reason.contains("outdated"), "{reason}");
                }
                other => panic!("outdated schema must be refused, got {other:?}"),
            }
        }
    }

    #[test]
    fn lookup_clamps_and_interpolates() {
        let p = sample_profile();
        // Exact hits return the recorded choice.
        assert_eq!(p.lookup(256, 256, 256).unwrap().kernel, KernelKind::Packed);
        assert_eq!(p.lookup(513, 513, 513).unwrap().strassen_min, 64);
        // Below/above the recorded range clamps to the endpoints.
        assert_eq!(p.lookup(32, 32, 32).unwrap(), p.entries[0].choice);
        assert_eq!(p.lookup(4096, 4096, 4096).unwrap(), p.entries[1].choice);
        // Between entries: numeric knobs interpolate, discrete knobs come
        // from the nearer entry. 384 sits ~at midpoint-low of [256, 513].
        let mid = p.lookup(384, 384, 384).unwrap();
        assert!(mid.strassen_min > 0 && mid.strassen_min < 64, "{mid:?}");
        assert!(mid.tile_min >= 16 && mid.tile_min <= 32);
        assert!(mid.tile_max >= mid.tile_min);
        // Non-square shapes use the geometric mean.
        assert!(p.lookup(513, 256, 513).is_some());
        // Empty profiles have nothing to say.
        let empty = TuningProfile { entries: Vec::new(), ..sample_profile() };
        assert_eq!(empty.lookup(256, 256, 256), None);
    }

    #[test]
    fn apply_respects_config_over_profile_precedence() {
        let choice = TunedChoice {
            tile_min: 8,
            tile_max: 32,
            strassen_min: 48,
            kernel: KernelKind::Packed,
            parallel_depth: 2,
            threads: 4,
            fuse_depth: 1,
            batch_window: 6,
            schedule: crate::schedule::Schedule::LowMem,
        };
        // Default config: every knob consults the choice (except kernel,
        // which only Auto delegates).
        let d = ModgemmConfig::default();
        let eff = choice.apply_to(&d, 256, 256, 256);
        assert_eq!(eff.truncation, Truncation::MinPadding(TileRange { min: 8, max: 32 }));
        assert_eq!(eff.strassen_min, 48);
        assert_eq!(eff.parallel_depth, 2);
        assert_eq!(eff.threads, 4);
        assert_eq!(eff.leaf_kernel, KernelKind::Blocked, "pinned Blocked default wins");
        assert_eq!(eff.fuse_depth, FuseDepth::Fixed(1), "Auto fuse_depth consults the profile");
        assert_eq!(eff.batch_window, 6, "auto batch_window consults the profile");
        assert_eq!(
            eff.schedule,
            crate::config::SchedulePolicy::Fixed(crate::schedule::Schedule::LowMem),
            "Auto schedule consults the profile"
        );
        // A recorded frugal tier never reaches the Strassen variant
        // (which has only the standard linearization).
        let strassen =
            ModgemmConfig { variant: crate::schedule::Variant::Strassen, ..Default::default() };
        let eff = choice.apply_to(&strassen, 256, 256, 256);
        assert_eq!(eff.schedule, crate::config::SchedulePolicy::Auto);
        assert!(eff.validate().is_ok(), "profile application must never create an invalid config");

        // Auto delegates kernel selection to the choice.
        let auto = ModgemmConfig { leaf_kernel: KernelKind::Auto, ..Default::default() };
        assert_eq!(choice.apply_to(&auto, 256, 256, 256).leaf_kernel, KernelKind::Packed);

        // Explicitly pinned knobs win over the profile.
        let pinned = ModgemmConfig {
            truncation: Truncation::Fixed(16),
            strassen_min: 7,
            parallel_depth: 1,
            threads: 2,
            leaf_kernel: KernelKind::Micro,
            fuse_depth: FuseDepth::Fixed(2),
            batch_window: 3,
            ..Default::default()
        };
        let eff = choice.apply_to(&pinned, 256, 256, 256);
        assert_eq!(eff.truncation, Truncation::Fixed(16));
        assert_eq!(eff.strassen_min, 7);
        assert_eq!(eff.parallel_depth, 1);
        assert_eq!(eff.threads, 2);
        assert_eq!(eff.leaf_kernel, KernelKind::Micro);
        assert_eq!(eff.fuse_depth, FuseDepth::Fixed(2), "explicit fuse_depth wins");
        assert_eq!(eff.batch_window, 3, "explicit batch_window wins");
        let pinned_sched = ModgemmConfig {
            schedule: crate::config::SchedulePolicy::Fixed(crate::schedule::Schedule::InPlace),
            ..Default::default()
        };
        assert_eq!(
            choice.apply_to(&pinned_sched, 256, 256, 256).schedule,
            crate::config::SchedulePolicy::Fixed(crate::schedule::Schedule::InPlace),
            "explicit schedule wins"
        );
    }

    #[test]
    fn effective_config_reports_hits() {
        let off = ModgemmConfig::default();
        let (eff, hit) = effective_config(&off, 100, 100, 100).unwrap();
        assert_eq!(eff, off);
        assert!(!hit, "TuningMode::Off never reports a hit");

        let forced = ModgemmConfig {
            tuning: TuningMode::Forced(TunedChoice { strassen_min: 32, ..TunedChoice::baseline() }),
            ..Default::default()
        };
        let (eff, hit) = effective_config(&forced, 100, 100, 100).unwrap();
        assert!(hit);
        assert_eq!(eff.strassen_min, 32);
    }

    #[test]
    fn forced_garbage_choice_is_typed_not_a_panic() {
        let bad = ModgemmConfig {
            tuning: TuningMode::Forced(TunedChoice {
                tile_min: 0,
                tile_max: 0,
                ..TunedChoice::baseline()
            }),
            ..Default::default()
        };
        // tile_min 0 is ignored by apply (guarded), so this stays valid…
        assert!(effective_config(&bad, 64, 64, 64).is_ok());
        // …but an inverted forced range is rejected by config validation
        // itself, as a typed error rather than a downstream panic.
        let inverted = ModgemmConfig {
            tuning: TuningMode::Forced(TunedChoice {
                tile_min: 64,
                tile_max: 16,
                ..TunedChoice::baseline()
            }),
            ..Default::default()
        };
        assert!(matches!(inverted.validate(), Err(GemmError::InvalidConfig { .. })));
    }

    #[test]
    fn save_and_load_roundtrip_via_fs() {
        let dir = std::env::temp_dir().join(format!("modgemm-tune-test-{}", std::process::id()));
        let path = dir.join("nested").join("profile.json");
        let p = sample_profile();
        p.save_to_path(&path).unwrap();
        let back = TuningProfile::load_from_path(&path).unwrap();
        assert_eq!(p, back);
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(
            TuningProfile::load_from_path(&path),
            Err(GemmError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn embedded_default_parses() {
        let p = embedded_default().expect("committed results/profile_default.json must parse");
        assert_eq!(p.schema_version, PROFILE_SCHEMA_VERSION);
        assert!(!p.entries.is_empty(), "the committed default profile records entries");
    }
}
