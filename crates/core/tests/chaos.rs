//! Chaos soak: hammer a [`GemmService`] from multiple client threads
//! while randomized faults fire at every planted site. The robustness
//! contract under test:
//!
//! * every accepted request resolves — `Ok` or a *typed* error, never a
//!   hang (all waits are bounded) and never an escaped panic;
//! * after the storm the service, its plan cache, and its dispatcher
//!   contexts remain usable: a clean request computes the exact product;
//! * the counters stay coherent (every submission is accounted for).
//!
//! Runs only with the `failpoints` feature (the CI `chaos` job); the
//! sites are process-global, which is fine here — this binary owns the
//! whole process.

#![cfg(feature = "failpoints")]

use std::sync::Arc;
use std::time::Duration;

use modgemm_core::faults::{self, FaultSite, FaultSpec};
use modgemm_core::{
    GemmError, GemmRequest, GemmService, MemoryBudget, ModgemmConfig, ServiceConfig, VerifyMode,
};
use modgemm_mat::naive::naive_gemm;
use modgemm_mat::{Matrix, Op};

fn filled(rows: usize, cols: usize, salt: u64) -> Matrix<f64> {
    let data = (0..rows * cols)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt);
            ((x >> 48) as i64 % 17 - 8) as f64
        })
        .collect::<Vec<_>>();
    Matrix::from_vec(data, rows, cols)
}

const CLIENTS: u64 = 4;
const REQUESTS_PER_CLIENT: u64 = 250; // 1000 total

#[test]
fn chaos_soak_every_request_resolves_typed() {
    // Arm every site with deterministic pseudo-random firing. Rates are
    // co-prime so the sites interleave rather than synchronize.
    faults::arm(FaultSite::Alloc, FaultSpec::one_in(97, 11));
    faults::arm(FaultSite::WorkerPanic, FaultSpec::one_in(61, 22));
    faults::arm(FaultSite::NonFinite, FaultSpec::one_in(41, 33));
    faults::arm(
        FaultSite::Latency,
        FaultSpec { latency: Duration::from_micros(300), ..FaultSpec::one_in(31, 44) },
    );

    // Parallel plans (so the DAG sites run; `threads: 0` keeps the CI
    // MODGEMM_THREADS matrix meaningful) under a finite memory budget.
    let gemm = ModgemmConfig { parallel_depth: 1, ..ModgemmConfig::default() };
    let svc = Arc::new(GemmService::<f64>::start(ServiceConfig {
        queue_capacity: 32,
        dispatchers: 4,
        memory_budget: MemoryBudget::MaxWorkspaceBytes(64 << 20),
        plan_cache_capacity: 16,
        gemm,
    }));

    let clients: Vec<_> = (0..CLIENTS)
        .map(|ci| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let (mut ok, mut typed_err, mut overload) = (0u64, 0u64, 0u64);
                for i in 0..REQUESTS_PER_CLIENT {
                    // A small shape vocabulary (the service's plan cache
                    // is sized for repeating traffic) spanning padded and
                    // ragged cases.
                    let dim = [17, 32, 48, 65][((ci + i) % 4) as usize];
                    let mut req = GemmRequest::new(
                        filled(dim, dim, ci * 1000 + i),
                        filled(dim, dim, ci * 2000 + i),
                    );
                    // A slice of traffic turns on verification, so the
                    // NonFinite poison site is actually *caught* (and the
                    // verified-retry path runs) rather than propagating
                    // silently.
                    if i % 3 == 0 {
                        req = req.config(ModgemmConfig {
                            verify: VerifyMode::Freivalds { rounds: 8, seed: i % 2 },
                            verify_retries: 2,
                            ..gemm
                        });
                    }
                    // A slice gets aggressive deadlines…
                    if i % 5 == 0 {
                        req = req.deadline_in(Duration::from_micros(150));
                    }
                    match svc.submit(req) {
                        Ok(ticket) => {
                            // …and a slice gets cancelled mid-flight.
                            if i % 7 == 0 {
                                ticket.cancel();
                            }
                            // Bounded wait: a hang here is a test failure,
                            // not a CI timeout.
                            match ticket
                                .wait_timeout(Duration::from_secs(60))
                                .expect("request hung: every ticket must resolve")
                            {
                                Ok(_) => ok += 1,
                                Err(
                                    GemmError::Cancelled
                                    | GemmError::DeadlineExceeded
                                    | GemmError::Allocation { .. }
                                    | GemmError::WorkerPanic { .. }
                                    | GemmError::VerificationFailed { .. }
                                    | GemmError::BudgetExceeded { .. },
                                ) => typed_err += 1,
                                Err(other) => {
                                    panic!("unexpected error class under chaos: {other:?}")
                                }
                            }
                        }
                        Err(GemmError::Overloaded { .. }) => overload += 1,
                        Err(other) => panic!("unexpected submit rejection: {other:?}"),
                    }
                }
                (ok, typed_err, overload)
            })
        })
        .collect();

    let (mut ok, mut typed_err, mut overload) = (0u64, 0u64, 0u64);
    for client in clients {
        let (o, e, v) = client.join().expect("client threads must not panic");
        ok += o;
        typed_err += e;
        overload += v;
    }
    assert_eq!(ok + typed_err + overload, CLIENTS * REQUESTS_PER_CLIENT);
    assert!(ok > 0, "some requests must survive the chaos");

    let stats = svc.stats();
    assert_eq!(stats.submitted, ok + typed_err, "accepted = resolved");
    assert_eq!(stats.rejected_overload, overload);
    assert_eq!(stats.finished(), stats.submitted, "no request left behind");
    assert_eq!(stats.bytes_in_use, 0, "ledger must drain to zero");
    assert!(stats.plan_cache_hits > 0, "repeated shapes must hit the plan cache");

    // Quiet the faults: the service (pool, cache, contexts) must still
    // produce exact products afterward.
    faults::disarm_all();
    let (a, b) = (filled(48, 48, 7), filled(48, 48, 9));
    let mut want = Matrix::zeros(48, 48);
    naive_gemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, want.view_mut());
    let got = svc.call(GemmRequest::new(a, b)).expect("clean request after disarm");
    assert_eq!(got, want, "service must be exact after the chaos storm");
}
