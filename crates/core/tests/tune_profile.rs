//! Tuning-profile loading semantics — kept in its own test binary (own
//! process) because these tests mutate `MODGEMM_PROFILE` and exercise
//! the process-global profile snapshot, which is loaded exactly once.
//!
//! One test function per concern that touches the environment, and the
//! env-dependent assertions are serialized inside a single function so
//! the harness cannot race them.

use modgemm_core::tune::{self, TuningMode, TuningProfile};
use modgemm_core::{GemmContext, GemmError, GemmPlan, ModgemmConfig};
use modgemm_mat::gen::random_matrix;
use modgemm_mat::view::Op;
use modgemm_mat::{KernelKind, Matrix};

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("modgemm-profile-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A minimal valid profile naming an unmistakable choice: Micro kernel,
/// strassen_min 48 — values no static heuristic would pick.
fn marker_profile_json() -> String {
    r#"{
  "schema_version": 4,
  "created_unix": 1754600000,
  "machine": {"os": "linux", "arch": "x86_64", "num_cpus": 2},
  "objective": "min-time",
  "entries": [
    {"m": 96, "k": 96, "n": 96, "tile_min": 16, "tile_max": 64,
     "strassen_min": 48, "kernel": "micro", "parallel_depth": 0,
     "threads": 0, "fuse_depth": 0, "batch_window": 0,
     "schedule": "standard", "score": 1.0}
  ]
}"#
    .to_string()
}

#[test]
fn corrupt_profile_files_fail_typed_and_the_global_snapshot_is_sticky() {
    let dir = temp_dir();

    // 1. Corrupt files on disk — truncated, garbage, future schema —
    //    all load as typed InvalidConfig, never a panic.
    let cases: &[(&str, &str)] = &[
        ("empty.json", ""),
        ("garbage.json", "\u{1}\u{2}not json"),
        ("truncated.json", "{\"schema_version\": 4, \"entries\": [{\"m\": 96,"),
        ("future.json", "{\"schema_version\": 99, \"entries\": []}"),
        ("outdated.json", "{\"schema_version\": 1, \"entries\": []}"),
        ("outdated_v2.json", "{\"schema_version\": 2, \"entries\": []}"),
        ("outdated_v3.json", "{\"schema_version\": 3, \"entries\": []}"),
        ("wrong_type.json", "[]"),
    ];
    for (name, text) in cases {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        match TuningProfile::load_from_path(&path) {
            Err(GemmError::InvalidConfig { .. }) => {}
            other => panic!("{name}: expected InvalidConfig, got {other:?}"),
        }
    }
    // A missing file is unreadable → also typed.
    assert!(matches!(
        TuningProfile::load_from_path(&dir.join("absent.json")),
        Err(GemmError::InvalidConfig { .. })
    ));

    // 2. MODGEMM_PROFILE pointing at a *valid* profile: the global
    //    snapshot loads it, Profile-mode planning consults it, and the
    //    tuned product is bit-identical to the untuned one.
    let good = dir.join("profile.json");
    std::fs::write(&good, marker_profile_json()).unwrap();
    std::env::set_var(tune::MODGEMM_PROFILE_ENV, &good);
    assert_eq!(tune::profile_path(), good, "the env override must win");
    let loaded = tune::global_profile().expect("valid env-pointed profile must load");
    let profile = loaded.expect("an existing file is Some");
    assert_eq!(profile.entries.len(), 1);
    assert_eq!(profile.entries[0].choice.kernel, KernelKind::Micro);

    let (m, k, n) = (96usize, 96usize, 96usize);
    let tuned_cfg = ModgemmConfig {
        leaf_kernel: KernelKind::Auto,
        tuning: TuningMode::Profile,
        ..Default::default()
    };
    let plan = GemmPlan::<i64>::try_new(m, k, n, &tuned_cfg).expect("tuned planning must succeed");
    assert!(plan.profile_hit(), "the loaded profile must drive selection");

    let a: Matrix<i64> = random_matrix(m, k, 3);
    let b: Matrix<i64> = random_matrix(k, n, 4);
    let mut c_tuned: Matrix<i64> = Matrix::zeros(m, n);
    let mut ctx = GemmContext::new();
    plan.try_execute(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c_tuned.view_mut(),
        &mut ctx,
    )
    .expect("tuned execution must succeed");
    let untuned_plan = GemmPlan::<i64>::try_new(m, k, n, &ModgemmConfig::default()).unwrap();
    assert!(!untuned_plan.profile_hit());
    let mut c_untuned: Matrix<i64> = Matrix::zeros(m, n);
    untuned_plan
        .try_execute(
            1,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0,
            c_untuned.view_mut(),
            &mut ctx,
        )
        .expect("untuned execution must succeed");
    assert_eq!(c_tuned, c_untuned, "a profile changes the plan, never the product");

    // 3. The snapshot is per-process and sticky: pointing the env at a
    //    corrupt file *after* the first load changes nothing (the
    //    already-loaded profile keeps serving), which is exactly what
    //    keeps service plan-cache keys coherent.
    std::env::set_var(tune::MODGEMM_PROFILE_ENV, dir.join("garbage.json"));
    assert!(tune::global_profile().is_ok(), "the first successful load is the snapshot");
    assert!(
        GemmPlan::<i64>::try_new(m, k, n, &tuned_cfg).is_ok(),
        "Profile-mode planning keeps working off the snapshot"
    );

    // 4. Fresh (non-global) loads still see the env: an explicitly
    //    pointed-at missing or corrupt path is a typed error from
    //    `load_default`.
    std::env::set_var(tune::MODGEMM_PROFILE_ENV, dir.join("absent.json"));
    assert!(matches!(tune::load_default(), Err(GemmError::InvalidConfig { .. })));
    std::env::set_var(tune::MODGEMM_PROFILE_ENV, dir.join("garbage.json"));
    assert!(matches!(tune::load_default(), Err(GemmError::InvalidConfig { .. })));

    std::env::remove_var(tune::MODGEMM_PROFILE_ENV);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forced_mode_needs_no_file_and_matches_its_choice() {
    // Forced mode never touches the filesystem: it must work with no
    // profile anywhere and drive the same application path.
    let choice = modgemm_core::TunedChoice {
        strassen_min: 24,
        kernel: KernelKind::Blocked,
        ..modgemm_core::TunedChoice::baseline()
    };
    let cfg = ModgemmConfig {
        leaf_kernel: KernelKind::Auto,
        tuning: TuningMode::Forced(choice),
        ..Default::default()
    };
    let plan = GemmPlan::<f64>::try_new(64, 64, 64, &cfg).expect("forced planning must succeed");
    assert!(plan.profile_hit());
}
