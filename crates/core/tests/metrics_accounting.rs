//! Cross-layer guarantees of the metrics layer:
//!
//! * the flop counts an instrumented run reports equal the closed forms
//!   in `modgemm_core::counts`, across truncation policies;
//! * instrumentation never perturbs the numerics — the `NoopSink` path
//!   and a `CollectingSink` run produce bit-identical products.

use modgemm_core::counts::{conventional_flops, strassen_flops, strassen_levels};
use modgemm_core::exec::{
    strassen_mul, try_strassen_mul_with_sink, workspace_len, ExecPolicy, NodeLayouts,
};
use modgemm_core::metrics::CollectingSink;
use modgemm_core::parallel::{try_strassen_mul_parallel, try_strassen_mul_parallel_with_sink};
use modgemm_core::{try_modgemm_with_ctx, try_modgemm_with_metrics, GemmContext, ModgemmConfig};
use modgemm_mat::gen::random_matrix;
use modgemm_mat::view::Op;
use modgemm_mat::Matrix;
use modgemm_morton::convert::to_morton;
use modgemm_morton::MortonLayout;

fn layouts(tile: usize, depth: usize) -> NodeLayouts {
    let l = MortonLayout::new(tile, tile, depth);
    NodeLayouts::new(l, l, l)
}

fn morton_operands(layouts: NodeLayouts, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let a: Matrix<f64> = random_matrix(layouts.a.rows(), layouts.a.cols(), seed);
    let b: Matrix<f64> = random_matrix(layouts.b.rows(), layouts.b.cols(), seed + 1);
    let mut ab = vec![0.0; layouts.a.len()];
    let mut bb = vec![0.0; layouts.b.len()];
    to_morton(a.view(), Op::NoTrans, &layouts.a, &mut ab);
    to_morton(b.view(), Op::NoTrans, &layouts.b, &mut bb);
    (ab, bb)
}

#[test]
fn recorded_flops_match_counts_across_policies() {
    // 64×64 of 8×8 tiles (depth 3): deep enough that every policy below
    // takes a different mix of Strassen and conventional levels.
    let layouts = layouts(8, 3);
    let policies = [
        ExecPolicy::default(), // Strassen at every division
        ExecPolicy { strassen_min: 16, ..Default::default() }, // one conventional level
        ExecPolicy { strassen_min: 32, ..Default::default() }, // two
        ExecPolicy { strassen_min: 1 << 20, ..Default::default() }, // pure conventional
    ];
    let (ab, bb) = morton_operands(layouts, 1);
    for policy in policies {
        let mut cb = vec![0.0; layouts.c.len()];
        let mut ws = vec![0.0; workspace_len(layouts, policy)];
        let mut sink = CollectingSink::new();
        try_strassen_mul_with_sink(&ab, &bb, &mut cb, layouts, &mut ws, policy, &mut sink).unwrap();
        let m = sink.into_metrics();
        let (pm, pk, pn) = layouts.dims();
        assert_eq!(m.flops, strassen_flops(layouts, policy), "policy {policy:?}");
        assert_eq!(m.conventional_flops, conventional_flops(pm, pk, pn), "policy {policy:?}");
        assert_eq!(m.strassen_levels, strassen_levels(layouts, policy), "policy {policy:?}");
        assert_eq!(m.peak_workspace_elems, ws.len(), "policy {policy:?}");
        // Per-level timing covers exactly the visited levels: one slot
        // per Strassen level plus the handover level (the leaf tile when
        // Strassen runs all the way down).
        assert_eq!(m.level_times.len(), m.strassen_levels + 1, "policy {policy:?}");
    }
    // Sanity on the ordering the closed forms promise: more Strassen
    // levels, fewer flops.
    let full = strassen_flops(layouts, policies[0]);
    let partial = strassen_flops(layouts, policies[1]);
    let none = strassen_flops(layouts, policies[3]);
    assert!(full < partial && partial < none);
    let (pm, pk, pn) = layouts.dims();
    assert_eq!(none, conventional_flops(pm, pk, pn));
}

#[test]
fn pipeline_metrics_flops_match_counts() {
    // Full pipeline at an odd size: the plan's padded layouts are chosen
    // internally, but the recorded plan must still satisfy the closed
    // forms on its *own* padded dimensions.
    let n = 96;
    let a: Matrix<f64> = random_matrix(n, n, 7);
    let b: Matrix<f64> = random_matrix(n, n, 8);
    for strassen_min in [0usize, 24, 1 << 20] {
        let cfg = ModgemmConfig { strassen_min, ..ModgemmConfig::default() };
        let mut c: Matrix<f64> = Matrix::zeros(n, n);
        let mut ctx = GemmContext::new();
        let mut sink = CollectingSink::new();
        try_modgemm_with_metrics(
            1.0,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0.0,
            c.view_mut(),
            &cfg,
            &mut ctx,
            &mut sink,
        )
        .unwrap();
        let m = sink.into_metrics();
        assert_eq!(m.problem, Some((n, n, n)));
        // conventional_flops(m,k,n) = 2·m·k·n, so summed across plans it
        // must equal twice the recorded padded volume.
        assert_eq!(m.conventional_flops as u128, 2 * m.padded_volume);
        assert!(m.flops <= m.conventional_flops);
        if strassen_min == 0 {
            assert!(m.strassen_levels > 0, "paper policy must take Strassen levels");
            assert!(m.flops < m.conventional_flops);
        } else if strassen_min == 1 << 20 {
            assert_eq!(m.strassen_levels, 0);
            assert_eq!(m.flops, m.conventional_flops);
        }
        assert!(m.padding_ratio() >= 1.0);
        assert!(m.effective_flops() == conventional_flops(n, n, n));
    }
}

#[test]
fn noop_and_collecting_runs_are_bit_identical() {
    // Executor level.
    let layouts = layouts(8, 3);
    let policy = ExecPolicy { strassen_min: 16, ..Default::default() };
    let (ab, bb) = morton_operands(layouts, 21);
    let mut c_noop = vec![0.0; layouts.c.len()];
    let mut ws = vec![0.0; workspace_len(layouts, policy)];
    strassen_mul(&ab, &bb, &mut c_noop, layouts, &mut ws, policy);

    let mut c_inst = vec![0.0; layouts.c.len()];
    let mut ws = vec![0.0; workspace_len(layouts, policy)];
    let mut sink = CollectingSink::new();
    try_strassen_mul_with_sink(&ab, &bb, &mut c_inst, layouts, &mut ws, policy, &mut sink).unwrap();
    assert!(sink.metrics.flops > 0);
    assert_bits_eq(&c_noop, &c_inst);

    // Parallel executor.
    let mut c_noop = vec![0.0; layouts.c.len()];
    try_strassen_mul_parallel(&ab, &bb, &mut c_noop, layouts, policy, 1).unwrap();
    let mut c_inst = vec![0.0; layouts.c.len()];
    let mut sink = CollectingSink::new();
    try_strassen_mul_parallel_with_sink(&ab, &bb, &mut c_inst, layouts, policy, 1, &mut sink)
        .unwrap();
    assert!(sink.metrics.temp_allocations > 0);
    assert_bits_eq(&c_noop, &c_inst);

    // Full pipeline, odd size (padding + conversion in play).
    let n = 97;
    let a: Matrix<f64> = random_matrix(n, n, 31);
    let b: Matrix<f64> = random_matrix(n, n, 32);
    let cfg = ModgemmConfig::default();
    let mut c_noop: Matrix<f64> = Matrix::zeros(n, n);
    let mut ctx = GemmContext::new();
    try_modgemm_with_ctx(
        0.5,
        Op::NoTrans,
        a.view(),
        Op::Trans,
        b.view(),
        0.25,
        c_noop.view_mut(),
        &cfg,
        &mut ctx,
    )
    .unwrap();

    let mut c_inst: Matrix<f64> = Matrix::zeros(n, n);
    let mut ctx = GemmContext::new();
    let mut sink = CollectingSink::new();
    try_modgemm_with_metrics(
        0.5,
        Op::NoTrans,
        a.view(),
        Op::Trans,
        b.view(),
        0.25,
        c_inst.view_mut(),
        &cfg,
        &mut ctx,
        &mut sink,
    )
    .unwrap();
    assert!(sink.metrics.breakdown.total() > std::time::Duration::ZERO);
    assert_bits_eq(c_noop.as_slice(), c_inst.as_slice());
}

fn assert_bits_eq(x: &[f64], y: &[f64]) {
    assert_eq!(x.len(), y.len());
    for (i, (a, b)) in x.iter().zip(y).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "element {i}: {a} vs {b}");
    }
}
