//! `MODGEMM_THREADS` environment handling — kept in its own test binary
//! (own process) because these tests mutate the process-global
//! environment and must not race the rest of the suite.
//!
//! One test function, so the mutations are serialized even if the
//! harness ever runs tests in this binary concurrently.

use modgemm_core::{try_resolve_threads, GemmError, GemmPlan, ModgemmConfig};

const ENV: &str = modgemm_core::MODGEMM_THREADS_ENV;

#[test]
fn malformed_threads_env_is_a_typed_error_on_try_paths() {
    // A typo must not silently change the worker count: the fallible
    // resolver reports it, and plan construction propagates it.
    for bad in ["banana", "0", "-3", "2.5"] {
        std::env::set_var(ENV, bad);
        assert!(
            matches!(try_resolve_threads(0), Err(GemmError::InvalidConfig { .. })),
            "{bad:?} must be a typed config error"
        );
        let err = GemmPlan::<f64>::try_new(32, 32, 32, &ModgemmConfig::default()).unwrap_err();
        assert!(
            matches!(err, GemmError::InvalidConfig { .. }),
            "plan construction must propagate the env error, got {err:?}"
        );
    }

    // An explicit configured count bypasses the (still malformed)
    // environment entirely.
    std::env::set_var(ENV, "banana");
    assert_eq!(try_resolve_threads(3), Ok(3));
    let cfg = ModgemmConfig { threads: 2, ..ModgemmConfig::default() };
    assert!(GemmPlan::<f64>::try_new(32, 32, 32, &cfg).is_ok());

    // Well-formed values resolve; blank means "auto".
    std::env::set_var(ENV, "4");
    assert_eq!(try_resolve_threads(0), Ok(4));
    std::env::set_var(ENV, "  ");
    assert!(try_resolve_threads(0).is_ok());
    std::env::remove_var(ENV);
    assert!(try_resolve_threads(0).unwrap() >= 1);
}
