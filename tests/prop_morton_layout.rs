//! Property-based tests on the Morton layout and tiling invariants.

use modgemm::mat::gen::coordinate_matrix;
use modgemm::mat::{Matrix, Op};
use modgemm::morton::convert::{from_morton, morton_get, to_morton};
use modgemm::morton::tiling::{choose_dim_tiling, choose_joint_tiling, TileRange};
use modgemm::morton::MortonLayout;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiling_covers_and_minimizes(
        x in 1usize..5000,
        tmin in 2usize..20,
        extra in 0usize..60,
    ) {
        let range = TileRange::new(tmin, tmin + extra);
        let t = choose_dim_tiling(x, range);
        // Covers.
        prop_assert!(t.padded >= x);
        prop_assert_eq!(t.padded, t.tile << t.depth);
        // Tile legal: inside range unless a single depth-0 tile.
        if t.depth > 0 {
            prop_assert!(t.tile >= range.min && t.tile <= range.max);
            // Minimal for its depth: one smaller tile would not cover.
            prop_assert!((t.tile - 1) << t.depth < x);
        }
    }

    #[test]
    fn joint_tiling_shares_depth_and_covers(
        m in 1usize..2000,
        k in 1usize..2000,
        n in 1usize..2000,
    ) {
        if let Some(j) = choose_joint_tiling(m, k, n, TileRange::PAPER) {
            prop_assert_eq!(j.m.depth, j.depth);
            prop_assert_eq!(j.k.depth, j.depth);
            prop_assert_eq!(j.n.depth, j.depth);
            prop_assert!(j.m.padded >= m && j.k.padded >= k && j.n.padded >= n);
        }
    }

    #[test]
    fn morton_offsets_are_a_bijection(
        tr in 1usize..6,
        tc in 1usize..6,
        depth in 0usize..4,
    ) {
        let l = MortonLayout::new(tr, tc, depth);
        let mut seen = vec![false; l.len()];
        for i in 0..l.rows() {
            for j in 0..l.cols() {
                let o = l.elem_offset(i, j);
                prop_assert!(!seen[o], "offset {} hit twice", o);
                seen[o] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn conversion_roundtrips_any_live_region(
        rows in 1usize..60,
        cols in 1usize..60,
        tr in 2usize..9,
        tc in 2usize..9,
        depth in 0usize..4,
        transpose in any::<bool>(),
    ) {
        let l = MortonLayout::new(tr, tc, depth);
        // Shrink the live region to fit the padded matrix.
        let (rows, cols) = (rows.min(l.rows()), cols.min(l.cols()));
        let op = if transpose { Op::Trans } else { Op::NoTrans };
        // Stored matrix such that op(stored) is rows x cols.
        let (sr, sc) = op.apply_dims(rows, cols);
        let src: Matrix<i64> = coordinate_matrix(sr, sc);
        let mut buf = vec![-1i64; l.len()];
        to_morton(src.view(), op, &l, &mut buf);

        // Every live element is where elem_offset says; padding is zero.
        for i in 0..l.rows() {
            for j in 0..l.cols() {
                let v = morton_get(&buf, &l, i, j);
                if i < rows && j < cols {
                    let expect = match op {
                        Op::NoTrans => src.get(i, j),
                        Op::Trans => src.get(j, i),
                    };
                    prop_assert_eq!(v, expect);
                } else {
                    prop_assert_eq!(v, 0);
                }
            }
        }

        // Roundtrip.
        let mut out: Matrix<i64> = Matrix::zeros(rows, cols);
        from_morton(&buf, &l, out.view_mut());
        for i in 0..rows {
            for j in 0..cols {
                let expect = match op {
                    Op::NoTrans => src.get(i, j),
                    Op::Trans => src.get(j, i),
                };
                prop_assert_eq!(out.get(i, j), expect);
            }
        }
    }
}
