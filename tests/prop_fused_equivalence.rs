//! Property tests for operand fusion's cardinal invariant: folding the
//! Winograd adds into packing and the scatter epilogue changes *how*
//! the product is computed, never *what* it computes.
//!
//! * For `fuse_depth` ∈ {0, 1, 2} × every [`KernelKind`] × ragged and
//!   strided shapes, the fused product on **integer** matrices is
//!   bit-identical to the fully staged schedule. The staged Winograd
//!   path materializes every pre-add and post-merge as an arena
//!   temporary; the fused path materializes none of them — integer
//!   arithmetic leaves no tolerance for the two to hide a discrepancy
//!   behind.
//! * A fused plan executes allocation-free on a warm context, exactly
//!   like its staged counterpart.
//! * Cancelling a pooled fused plan at every task-dequeue index — where
//!   each DAG leaf runs a whole fused subtree — resolves `Ok` or typed
//!   `Cancelled`, never a hang, panic, or corrupted warm context.

use modgemm::core::plan::GemmPlan;
use modgemm::core::{
    try_modgemm, CancelToken, CollectingSink, FuseDepth, GemmContext, GemmError, ModgemmConfig,
};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::view::required_len;
use modgemm::mat::{KernelKind, MatMut, MatRef, Matrix, Op};
use proptest::prelude::*;

/// Fills a leading-dimension-padded backing buffer: in-bounds entries
/// from `seed`, the `ld` gap rows with a sentinel the multiply must
/// never touch.
fn strided_buf(rows: usize, cols: usize, ld: usize, seed: u64) -> Vec<i64> {
    let src: Matrix<i64> = random_matrix(rows, cols, seed);
    let mut buf = vec![i64::MIN + 7; required_len(rows, cols, ld)];
    for j in 0..cols {
        for i in 0..rows {
            buf[j * ld + i] = src.get(i, j);
        }
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The i64 bit-exactness oracle across the whole fusion matrix:
    /// ragged shapes, strided operands, every kernel, every legal
    /// `fuse_depth`. The staged run (`Fixed(0)`) is the reference; the
    /// padding gap in the strided output must come through untouched.
    #[test]
    fn fused_is_bit_identical_to_staged_on_i64(
        m in 1usize..56,
        k in 1usize..56,
        n in 1usize..56,
        pad_a in 0usize..5,
        pad_b in 0usize..5,
        pad_c in 0usize..5,
        kernel_sel in 0usize..5,
        fuse in 1usize..3,
        alpha in -3i64..4,
        beta in -3i64..4,
        seed in 0u64..1000,
    ) {
        let kernel = KernelKind::ALL[kernel_sel % KernelKind::ALL.len()];
        let (lda, ldb, ldc) = (m + pad_a, k + pad_b, m + pad_c);
        let ab = strided_buf(m, k, lda, seed);
        let bb = strided_buf(k, n, ldb, seed + 1);
        let c0 = strided_buf(m, n, ldc, seed + 2);

        let run = |fuse_depth: FuseDepth| -> Vec<i64> {
            let cfg = ModgemmConfig { leaf_kernel: kernel, fuse_depth, ..Default::default() };
            let mut cb = c0.clone();
            try_modgemm(
                alpha,
                Op::NoTrans,
                MatRef::from_slice(&ab, m, k, lda),
                Op::NoTrans,
                MatRef::from_slice(&bb, k, n, ldb),
                beta,
                MatMut::from_slice(&mut cb, m, n, ldc),
                &cfg,
            )
            .expect("well-formed operands must multiply");
            cb
        };

        let staged = run(FuseDepth::Fixed(0));
        let fused = run(FuseDepth::Fixed(fuse));
        // Whole backing buffers: equality covers the product, the beta
        // blend, and the untouched sentinel rows in the ld gap at once.
        prop_assert_eq!(&fused, &staged, "kernel {} fuse {}", kernel, fuse);
    }
}

#[test]
fn fused_plans_execute_allocation_free_on_a_warm_context() {
    for fuse in 1..=2usize {
        let cfg = ModgemmConfig {
            leaf_kernel: KernelKind::Packed,
            fuse_depth: FuseDepth::Fixed(fuse),
            ..Default::default()
        };
        let (m, k, n) = (150usize, 130, 140);
        let plan = GemmPlan::<f64>::try_new(m, k, n, &cfg).unwrap();
        assert_eq!(plan.fused_levels(), fuse, "the plan must actually fuse");
        let a: Matrix<f64> = random_matrix(m, k, 21);
        let b: Matrix<f64> = random_matrix(k, n, 22);
        let mut ctx = GemmContext::new();
        let mut c: Matrix<f64> = Matrix::zeros(m, n);
        plan.execute(a.view(), b.view(), c.view_mut(), &mut ctx);
        let mut warm = CollectingSink::new();
        let mut c2: Matrix<f64> = Matrix::zeros(m, n);
        plan.try_execute_with_metrics(
            1.0,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0.0,
            c2.view_mut(),
            &mut ctx,
            &mut warm,
        )
        .unwrap();
        assert_eq!(c2, c, "warm fused re-execution must be deterministic");
        assert_eq!(
            warm.metrics.temp_alloc_bytes, 0,
            "fuse {fuse}: warm fused execution must be allocation-free"
        );
        assert_eq!(warm.metrics.temp_allocations, 0);
        assert_eq!(warm.metrics.fused_levels, fuse, "the sink must report the fused levels");
    }
}

#[test]
fn cancel_mid_dag_covers_fused_leaf_tasks() {
    // A pooled plan whose DAG leaves each run a fused subtree: depth 4
    // of Strassen with the innermost two levels fused, one level
    // lowered to tasks. Cancelling at every task-dequeue index must
    // resolve Ok (cancel arrived past the last check) or typed
    // Cancelled — and the warm context must survive for an exact,
    // allocation-free follow-up either way.
    let cfg = ModgemmConfig {
        // 176 = 11·2^4: four Strassen levels, so two staged levels
        // remain above the two fused ones and the DAG is non-trivial.
        truncation: modgemm::core::Truncation::MinPadding(modgemm::morton::TileRange::new(4, 16)),
        leaf_kernel: KernelKind::Packed,
        fuse_depth: FuseDepth::Fixed(2),
        parallel_depth: 1,
        threads: 4,
        ..Default::default()
    };
    let (m, k, n) = (176usize, 176, 176);
    let plan = GemmPlan::<i64>::try_new(m, k, n, &cfg).unwrap();
    assert_eq!(plan.fused_levels(), 2, "the DAG's leaf tasks must run fused subtrees");
    let tasks = plan.parallel_tasks() as u64;
    assert!(tasks > 0, "this shape must compile a parallel DAG");

    let a: Matrix<i64> = random_matrix(m, k, 31);
    let b: Matrix<i64> = random_matrix(k, n, 32);
    let mut ctx = GemmContext::new();
    let mut c_ref: Matrix<i64> = Matrix::zeros(m, n);
    plan.try_execute(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c_ref.view_mut(),
        &mut ctx,
    )
    .unwrap();

    for cut in 0..=tasks {
        let token = CancelToken::cancelling_after(cut);
        let mut c: Matrix<i64> = Matrix::zeros(m, n);
        match plan.try_execute_cancellable_with_metrics(
            1,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0,
            c.view_mut(),
            &mut ctx,
            &token,
            &mut modgemm::core::NoopSink,
        ) {
            Ok(_) => assert_eq!(c, c_ref, "completed run must be exact (cut {cut})"),
            Err(GemmError::Cancelled) => {}
            other => panic!("unexpected outcome at cut {cut}: {other:?}"),
        }

        let mut c2: Matrix<i64> = Matrix::zeros(m, n);
        let mut sink = CollectingSink::new();
        plan.try_execute_with_metrics(
            1,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0,
            c2.view_mut(),
            &mut ctx,
            &mut sink,
        )
        .unwrap();
        assert_eq!(c2, c_ref, "follow-up after cut {cut} must be exact");
        assert_eq!(
            sink.metrics.temp_alloc_bytes, 0,
            "follow-up after cut {cut} must be allocation-free"
        );
    }
}
