//! Cross-crate consistency of the cache-simulation substrate: the traced
//! executors must behave exactly like the fast ones (bitwise results,
//! closed-form flop counts), and the simulated cache must show the
//! qualitative effects §4.2 reasons about.

use modgemm::cachesim::{traced_dgefmm, traced_modgemm, CacheConfig};
use modgemm::core::{layouts_of, ExecPolicy, ModgemmConfig, Truncation};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::{Matrix, Op};
use modgemm::morton::tiling::TileRange;

fn cfg() -> ModgemmConfig {
    ModgemmConfig {
        truncation: Truncation::MinPadding(TileRange::new(4, 16)),
        ..ModgemmConfig::paper()
    }
}

#[test]
fn traced_modgemm_equals_fast_modgemm_bitwise() {
    for (n, seed) in [(40usize, 1u64), (51, 2)] {
        let a: Matrix<f64> = random_matrix(n, n, seed);
        let b: Matrix<f64> = random_matrix(n, n, seed + 5);
        let rep = traced_modgemm(&a, &b, &cfg(), CacheConfig::PAPER_FIG9, true);
        let mut fast: Matrix<f64> = Matrix::zeros(n, n);
        modgemm::core::modgemm(
            1.0,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0.0,
            fast.view_mut(),
            &cfg(),
        );
        assert_eq!(rep.result, fast, "n = {n}");
    }
}

#[test]
fn traced_flops_match_counts_model() {
    let n = 32;
    let a: Matrix<f64> = random_matrix(n, n, 3);
    let b: Matrix<f64> = random_matrix(n, n, 4);
    let rep = traced_modgemm(&a, &b, &cfg(), CacheConfig::PAPER_FIG9, false);
    let plan = cfg().plan(n, n, n).unwrap();
    let expect = modgemm::core::counts::strassen_flops(layouts_of(&plan), ExecPolicy::default());
    assert_eq!(rep.flops, expect);
}

#[test]
fn traced_dgefmm_equals_fast_dgefmm_bitwise() {
    let (m, k, n) = (37, 41, 29);
    let a: Matrix<f64> = random_matrix(m, k, 5);
    let b: Matrix<f64> = random_matrix(k, n, 6);
    let rep = traced_dgefmm(&a, &b, 8, CacheConfig::PAPER_FIG9);
    let mut fast: Matrix<f64> = Matrix::zeros(m, n);
    modgemm::baselines::dgefmm::dgefmm_core(a.view(), b.view(), fast.view_mut(), 8);
    assert_eq!(rep.result, fast);
}

#[test]
fn morton_is_not_worse_than_peeling_outside_conflict_regime_mini() {
    // A miniature of the Figure 9 claim at a clean (non-power-of-two
    // padded) size: the Morton code's miss ratio must not exceed the
    // column-major code's by more than noise. The full-scale shape (the
    // 11.6% vs 19.3% separation at n = 513 and the drop off the 512
    // conflict plateau) is asserted by `figure9_shape_at_paper_scale`,
    // which is `#[ignore]`d because it simulates ~160M accesses.
    let n = 272; // pads to 272 = 17·16: tiny tiles, no 16KB quadrant conflicts
    let a: Matrix<f64> = random_matrix(n, n, 7);
    let b: Matrix<f64> = random_matrix(n, n, 8);
    let paper_cfg = ModgemmConfig::paper();
    let rm = traced_modgemm(&a, &b, &paper_cfg, CacheConfig::PAPER_FIG9, true);
    let rf = traced_dgefmm(&a, &b, 64, CacheConfig::PAPER_FIG9);
    assert!(
        rm.stats.miss_ratio() < rf.stats.miss_ratio() + 0.01,
        "MODGEMM {:.4} vs DGEFMM {:.4}",
        rm.stats.miss_ratio(),
        rf.stats.miss_ratio()
    );
}

#[test]
#[ignore = "simulates ~160M accesses; run with --ignored in release"]
fn figure9_shape_at_paper_scale() {
    let paper_cfg = ModgemmConfig::paper();
    let run = |n: usize| {
        let a: Matrix<f64> = random_matrix(n, n, 42);
        let b: Matrix<f64> = random_matrix(n, n, 43);
        (
            traced_modgemm(&a, &b, &paper_cfg, CacheConfig::PAPER_FIG9, true).stats.miss_ratio(),
            traced_dgefmm(&a, &b, 64, CacheConfig::PAPER_FIG9).stats.miss_ratio(),
        )
    };
    let (m512, _f512) = run(512);
    let (m513, f513) = run(513);
    // The §4.2 dip: stepping off the 512 conflict plateau slashes
    // MODGEMM's miss ratio.
    assert!(m513 < 0.6 * m512, "expected the n=513 dip: {m513:.4} vs {m512:.4}");
    // Past the plateau, Morton order beats peeling (the Figure 9 ordering).
    assert!(m513 < f513, "MODGEMM {m513:.4} vs DGEFMM {f513:.4} at n = 513");
}

#[test]
fn associativity_reduces_conflict_misses() {
    // The §4.2 conflicts are conflict misses, so a 2-way cache of the
    // same capacity should remove most of them. (Equal-size caches of
    // different geometry are not strictly inclusion-ordered under LRU, so
    // the assertion carries a small tolerance.)
    let n = 96;
    let a: Matrix<f64> = random_matrix(n, n, 9);
    let b: Matrix<f64> = random_matrix(n, n, 10);
    let paper_cfg = ModgemmConfig::paper();
    let dm = traced_modgemm(&a, &b, &paper_cfg, CacheConfig::PAPER_FIG9, true);
    let two_way = traced_modgemm(
        &a,
        &b,
        &paper_cfg,
        CacheConfig { size: 16 * 1024, block: 32, assoc: 2 },
        true,
    );
    assert_eq!(dm.stats.accesses, two_way.stats.accesses);
    assert!(
        (two_way.stats.misses as f64) <= 1.10 * dm.stats.misses as f64,
        "2-way {} vs direct-mapped {}",
        two_way.stats.misses,
        dm.stats.misses
    );
}
