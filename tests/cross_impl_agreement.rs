//! Cross-implementation agreement: MODGEMM, DGEFMM, DGEMMW, and the
//! conventional baseline must compute the same product (up to
//! Strassen-grade roundoff) for the same inputs — the precondition for
//! every comparison in the paper's §4.

use modgemm::baselines::{
    bailey_gemm, conventional_gemm, dgefmm, dgemmw, BaileyConfig, DgefmmConfig, DgemmwConfig,
};
use modgemm::core::{modgemm, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_gemm;
use modgemm::mat::norms::assert_matrix_eq;
use modgemm::mat::{KernelKind, Matrix, Op};

#[allow(clippy::too_many_arguments)]
fn check_all(m: usize, k: usize, n: usize, alpha: f64, beta: f64, op_a: Op, op_b: Op, seed: u64) {
    let (ar, ac) = op_a.apply_dims(m, k);
    let (br, bc) = op_b.apply_dims(k, n);
    let a: Matrix<f64> = random_matrix(ar, ac, seed);
    let b: Matrix<f64> = random_matrix(br, bc, seed + 1);
    let c0: Matrix<f64> = random_matrix(m, n, seed + 2);

    let mut oracle = c0.clone();
    naive_gemm(alpha, op_a, a.view(), op_b, b.view(), beta, oracle.view_mut());

    let mut c = c0.clone();
    modgemm(alpha, op_a, a.view(), op_b, b.view(), beta, c.view_mut(), &ModgemmConfig::paper());
    assert_matrix_eq(c.view(), oracle.view(), k);

    let mut c = c0.clone();
    dgefmm(
        alpha,
        op_a,
        a.view(),
        op_b,
        b.view(),
        beta,
        c.view_mut(),
        &DgefmmConfig { truncation: 16, ..Default::default() },
    );
    assert_matrix_eq(c.view(), oracle.view(), k);

    let mut c = c0.clone();
    dgemmw(
        alpha,
        op_a,
        a.view(),
        op_b,
        b.view(),
        beta,
        c.view_mut(),
        &DgemmwConfig { truncation: 16, ..Default::default() },
    );
    assert_matrix_eq(c.view(), oracle.view(), k);

    let mut c = c0.clone();
    conventional_gemm(alpha, op_a, a.view(), op_b, b.view(), beta, c.view_mut());
    assert_matrix_eq(c.view(), oracle.view(), k);
}

#[test]
fn square_sizes_from_paper_sweep() {
    for (n, seed) in [(150usize, 1u64), (171, 2), (200, 3), (255, 4)] {
        check_all(n, n, n, 1.0, 0.0, Op::NoTrans, Op::NoTrans, seed);
    }
}

#[test]
fn sizes_around_powers_of_two() {
    for (n, seed) in [(127usize, 10u64), (128, 11), (129, 12)] {
        check_all(n, n, n, 1.0, 0.0, Op::NoTrans, Op::NoTrans, seed);
    }
}

#[test]
fn general_parameters_and_transposes() {
    check_all(120, 90, 160, 2.0, -0.5, Op::Trans, Op::NoTrans, 20);
    check_all(77, 133, 99, -1.0, 1.0, Op::NoTrans, Op::Trans, 21);
    check_all(101, 101, 101, 0.5, 0.25, Op::Trans, Op::Trans, 22);
}

#[test]
fn all_implementations_on_integers_are_exact() {
    // Integer workloads make agreement exact, not just within tolerance.
    let (m, k, n) = (73, 85, 61);
    let a: Matrix<i64> = random_matrix(m, k, 30);
    let b: Matrix<i64> = random_matrix(k, n, 31);
    let mut expect: Matrix<i64> = Matrix::zeros(m, n);
    naive_gemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0, expect.view_mut());

    let mut c: Matrix<i64> = Matrix::zeros(m, n);
    modgemm(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c.view_mut(),
        &ModgemmConfig::paper(),
    );
    assert_eq!(c, expect, "modgemm");

    let mut c: Matrix<i64> = Matrix::zeros(m, n);
    dgefmm(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c.view_mut(),
        &DgefmmConfig { truncation: 8, ..Default::default() },
    );
    assert_eq!(c, expect, "dgefmm");

    let mut c: Matrix<i64> = Matrix::zeros(m, n);
    dgemmw(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c.view_mut(),
        &DgemmwConfig { truncation: 8, ..Default::default() },
    );
    assert_eq!(c, expect, "dgemmw");
}

#[test]
fn every_leaf_kernel_agrees_across_implementations() {
    // The kernel selector threads through MODGEMM's plan and all four
    // baselines; integer workloads make agreement exact for each choice.
    let (m, k, n) = (53, 47, 61);
    let a: Matrix<i64> = random_matrix(m, k, 40);
    let b: Matrix<i64> = random_matrix(k, n, 41);
    let mut expect: Matrix<i64> = Matrix::zeros(m, n);
    naive_gemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0, expect.view_mut());

    for kernel in [KernelKind::Naive, KernelKind::Blocked, KernelKind::Micro] {
        let mut c: Matrix<i64> = Matrix::zeros(m, n);
        let cfg = ModgemmConfig { leaf_kernel: kernel, ..Default::default() };
        modgemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0, c.view_mut(), &cfg);
        assert_eq!(c, expect, "modgemm {kernel:?}");

        let mut c: Matrix<i64> = Matrix::zeros(m, n);
        let cfg = DgefmmConfig { truncation: 8, kernel };
        dgefmm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0, c.view_mut(), &cfg);
        assert_eq!(c, expect, "dgefmm {kernel:?}");

        let mut c: Matrix<i64> = Matrix::zeros(m, n);
        let cfg = DgemmwConfig { truncation: 8, kernel };
        dgemmw(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0, c.view_mut(), &cfg);
        assert_eq!(c, expect, "dgemmw {kernel:?}");

        let mut c: Matrix<i64> = Matrix::zeros(m, n);
        let cfg = BaileyConfig { levels: 2, kernel };
        bailey_gemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0, c.view_mut(), &cfg);
        assert_eq!(c, expect, "bailey {kernel:?}");
    }
}
