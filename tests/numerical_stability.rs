//! Numerical behaviour of the fast algorithms.
//!
//! The paper defers numerical analysis to Higham; these tests pin down
//! what a user can rely on: Strassen-Winograd's error grows faster than
//! the conventional algorithm's but stays within the classical
//! `O(k·scale·ε)`-style envelope our tolerance model encodes, and special
//! values behave sanely.

use modgemm::baselines::conventional_gemm;
use modgemm::core::{modgemm, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_product;
use modgemm::mat::norms::{frob_norm, gemm_tolerance, max_abs_diff};
use modgemm::mat::{Matrix, Op};

fn strassen_error(n: usize, seed: u64) -> f64 {
    let a: Matrix<f64> = random_matrix(n, n, seed);
    let b: Matrix<f64> = random_matrix(n, n, seed + 1);
    let mut c: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(
        1.0,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0.0,
        c.view_mut(),
        &ModgemmConfig::paper(),
    );
    let expect = naive_product(&a, &b);
    max_abs_diff(c.view(), expect.view())
}

#[test]
fn error_within_tolerance_model_across_sizes() {
    for n in [64usize, 150, 256, 333] {
        let err = strassen_error(n, 7);
        let tol = gemm_tolerance::<f64>(n, 1.0);
        assert!(err <= tol, "n = {n}: err {err:.3e} > tol {tol:.3e}");
        // And the error is not trivially zero — we really do reassociate.
        if n >= 150 {
            assert!(err > 0.0, "n = {n}: suspiciously exact");
        }
    }
}

#[test]
fn identity_products_are_accurate_but_not_exact() {
    // A·I is NOT bitwise exact under Winograd: intermediate sums like
    // S2 = A21 + A22 − A11 round before their contributions cancel. It
    // must still land within a few ulps; exactness is checked separately
    // on the integer instantiation, where no rounding exists.
    let n = 130;
    let a: Matrix<f64> = random_matrix(n, n, 9);
    let id: Matrix<f64> = Matrix::identity(n);
    let mut c: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(
        1.0,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        id.view(),
        0.0,
        c.view_mut(),
        &ModgemmConfig::paper(),
    );
    assert!(max_abs_diff(c.view(), a.view()) < 64.0 * f64::EPSILON);
    modgemm(
        1.0,
        Op::NoTrans,
        id.view(),
        Op::NoTrans,
        a.view(),
        0.0,
        c.view_mut(),
        &ModgemmConfig::paper(),
    );
    assert!(max_abs_diff(c.view(), a.view()) < 64.0 * f64::EPSILON);

    let ai: Matrix<i64> = random_matrix(n, n, 9);
    let idi: Matrix<i64> = Matrix::identity(n);
    let mut ci: Matrix<i64> = Matrix::zeros(n, n);
    modgemm(
        1,
        Op::NoTrans,
        ai.view(),
        Op::NoTrans,
        idi.view(),
        0,
        ci.view_mut(),
        &ModgemmConfig::paper(),
    );
    assert_eq!(ci, ai, "integer identity product must be exact");
}

#[test]
fn zero_matrices_stay_zero() {
    let n = 100;
    let a: Matrix<f64> = Matrix::zeros(n, n);
    let b: Matrix<f64> = random_matrix(n, n, 11);
    let mut c: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(
        1.0,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0.0,
        c.view_mut(),
        &ModgemmConfig::paper(),
    );
    assert!(c.as_slice().iter().all(|&x| x == 0.0));
}

#[test]
fn scaling_linearity_is_respected() {
    // gemm(α·A, B) must equal α·gemm(A, B) up to roundoff.
    let n = 96;
    let a: Matrix<f64> = random_matrix(n, n, 13);
    let b: Matrix<f64> = random_matrix(n, n, 14);
    let cfg = ModgemmConfig::paper();

    let mut c1: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(2.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c1.view_mut(), &cfg);

    let a2 = Matrix::from_fn(n, n, |i, j| 2.0 * a.get(i, j));
    let mut c2: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(1.0, Op::NoTrans, a2.view(), Op::NoTrans, b.view(), 0.0, c2.view_mut(), &cfg);

    let diff = max_abs_diff(c1.view(), c2.view());
    assert!(diff <= gemm_tolerance::<f64>(n, 2.0), "diff {diff:.3e}");
}

#[test]
fn strassen_error_comparable_scale_to_conventional() {
    // Both algorithms' deviation from the naive oracle should sit well
    // inside the tolerance envelope; Strassen may be a small constant
    // factor worse, not orders of magnitude.
    let n = 256;
    let a: Matrix<f64> = random_matrix(n, n, 15);
    let b: Matrix<f64> = random_matrix(n, n, 16);
    let oracle = naive_product(&a, &b);

    let mut cs: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(
        1.0,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0.0,
        cs.view_mut(),
        &ModgemmConfig::paper(),
    );
    let err_s = max_abs_diff(cs.view(), oracle.view());

    let mut cc: Matrix<f64> = Matrix::zeros(n, n);
    conventional_gemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, cc.view_mut());
    let err_c = max_abs_diff(cc.view(), oracle.view());

    let scale = frob_norm(oracle.view()) / n as f64;
    assert!(err_s <= 1e-11 * scale.max(1.0) * n as f64, "strassen err {err_s:.3e}");
    // Guard the "orders of magnitude" claim with a generous factor.
    assert!(
        err_s <= 1e4 * err_c.max(f64::EPSILON),
        "strassen {err_s:.3e} vs conventional {err_c:.3e}"
    );
}
