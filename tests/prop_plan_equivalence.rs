//! Property tests for the plan/execute split: a precompiled
//! [`GemmPlan`] must be *observationally identical* to the legacy
//! one-shot pipeline it refactors.
//!
//! * For random shapes, `(α, β)` pairs, transposes, and truncation
//!   policies, planned execution over **integer** matrices is
//!   bit-identical to `try_modgemm` — both paths run the same flattened
//!   schedule over the same arena layout, so even Strassen's
//!   reassociation cannot distinguish them.
//! * The `try_*` planning and execution paths never panic: mismatched
//!   operands and degenerate dimensions all come back as `Ok` or a typed
//!   [`GemmError`].

use modgemm::core::plan::GemmPlan;
use modgemm::core::{try_modgemm, GemmContext, GemmError, ModgemmConfig, Truncation, VerifyMode};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::{KernelKind, Matrix, Op};
use modgemm::morton::TileRange;
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::NoTrans), Just(Op::Trans)]
}

/// Decodes a drawn `(selector, lo, width)` triple into a truncation
/// policy (the vendored proptest has no `prop_map`, so composite values
/// are decoded in the test body).
fn decode_truncation(selector: bool, lo: usize, width: usize) -> Truncation {
    if selector {
        Truncation::MinPadding(TileRange::new(lo, lo + width))
    } else {
        Truncation::Fixed(lo + width)
    }
}

fn decode_kernel(selector: usize) -> KernelKind {
    KernelKind::ALL[selector % KernelKind::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Planned execution is bit-identical to the one-shot path on
    /// integer matrices, across shapes (including split-prone
    /// rectangles), scaling parameters, transposes, truncation policies,
    /// and leaf kernels.
    #[test]
    fn planned_execute_is_bit_identical_to_one_shot(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        alpha in -3i64..4,
        beta in -3i64..4,
        op_a in op_strategy(),
        op_b in op_strategy(),
        trunc_kind in any::<bool>(),
        trunc_lo in 2usize..8,
        trunc_width in 4usize..20,
        kernel_sel in 0usize..5,
        strassen_min in 0usize..12,
        seed in 0u64..1000,
    ) {
        let cfg = ModgemmConfig {
            truncation: decode_truncation(trunc_kind, trunc_lo, trunc_width),
            leaf_kernel: decode_kernel(kernel_sel),
            strassen_min,
            ..Default::default()
        };
        let (ar, ac) = op_a.apply_dims(m, k);
        let (br, bc) = op_b.apply_dims(k, n);
        let a: Matrix<i64> = random_matrix(ar, ac, seed);
        let b: Matrix<i64> = random_matrix(br, bc, seed + 1);
        let c0: Matrix<i64> = random_matrix(m, n, seed + 2);

        let mut c_legacy = c0.clone();
        try_modgemm(alpha, op_a, a.view(), op_b, b.view(), beta, c_legacy.view_mut(), &cfg)
            .expect("legacy path must accept well-formed operands");

        let plan = GemmPlan::<i64>::try_new(m, k, n, &cfg)
            .expect("planning must accept a valid configuration");
        let mut ctx = GemmContext::new();
        let mut c_planned = c0.clone();
        plan.try_execute(
            alpha, op_a, a.view(), op_b, b.view(), beta, c_planned.view_mut(), &mut ctx,
        )
        .expect("planned path must accept matching operands");
        prop_assert_eq!(&c_planned, &c_legacy);

        // A second execution on the warm context must agree too.
        let mut c_again = c0.clone();
        plan.try_execute(
            alpha, op_a, a.view(), op_b, b.view(), beta, c_again.view_mut(), &mut ctx,
        )
        .expect("warm re-execution must succeed");
        prop_assert_eq!(&c_again, &c_legacy);
    }

    /// The `try_*` plan paths are total: wrong-shaped operands, degenerate
    /// dimensions, and verification modes surface as typed errors or Ok,
    /// never as panics — and a shape mismatch is reported as
    /// `PlanShapeMismatch` with the planned triple echoed back.
    #[test]
    fn try_plan_paths_never_panic(
        m in 0usize..40,
        k in 0usize..40,
        n in 0usize..40,
        am in 0usize..40,
        ak in 0usize..40,
        bk in 0usize..40,
        bn in 0usize..40,
        verify_rounds in 0u32..4,
        seed in 0u64..1000,
    ) {
        let verify = if verify_rounds == 0 {
            VerifyMode::Off
        } else {
            VerifyMode::Freivalds { rounds: verify_rounds, seed }
        };
        let cfg = ModgemmConfig { verify, ..Default::default() };
        let plan = GemmPlan::<f64>::try_new(m, k, n, &cfg)
            .unwrap_or_else(|e| panic!("planning rejected {m}x{k}x{n}: {e}"));
        let a: Matrix<f64> = random_matrix(am, ak, seed);
        let b: Matrix<f64> = random_matrix(bk, bn, seed + 1);
        let mut c: Matrix<f64> = Matrix::zeros(am, bn);
        let mut ctx = GemmContext::new();
        let result = plan.try_execute(
            1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), &mut ctx,
        );
        match result {
            Ok(_) => {
                // Success requires the operands to have matched the plan.
                prop_assert_eq!((am, ak, bk, bn), (m, k, k, n));
            }
            Err(GemmError::PlanShapeMismatch { planned, got }) => {
                prop_assert_eq!(planned, (m, k, n));
                prop_assert_ne!(got, planned);
            }
            Err(GemmError::InnerDimMismatch { a_cols, b_rows }) => {
                prop_assert_eq!((a_cols, b_rows), (ak, bk));
            }
            Err(GemmError::OutputDimMismatch { .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
