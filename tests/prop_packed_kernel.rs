//! Property tests for the packed SIMD leaf kernel.
//!
//! The packed kernel reorders nothing arithmetically that matters over a
//! commutative, associative scalar: on **integers** it must be
//! bit-identical to the naive triple loop, whatever the SIMD dispatch
//! picked (integer leaves always take the portable microkernel, and
//! integer addition is associative, so panel traversal order is
//! invisible). On **floats** the SIMD microkernel reassociates the
//! `k`-loop across register lanes, so agreement is required only within
//! the standard backward-error envelope.

use modgemm::mat::gen::random_matrix;
use modgemm::mat::kernel::{Naive, Packed};
use modgemm::mat::norms::assert_matrix_eq;
use modgemm::mat::{KernelKind, LeafKernel, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packed ≡ Naive, bit for bit, on integer matrices — including
    /// ragged shapes that exercise the zero-padded panel tails.
    #[test]
    fn packed_is_bit_identical_to_naive_on_i64(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 1);
        let c0: Matrix<i64> = random_matrix(m, n, seed + 2);

        let mut c_naive = c0.clone();
        Naive.mul_add(a.view(), b.view(), c_naive.view_mut());
        let mut c_packed = c0.clone();
        Packed.mul_add(a.view(), b.view(), c_packed.view_mut());
        prop_assert_eq!(&c_packed, &c_naive);

        // Auto resolves to Packed or Blocked; both are exact on i64.
        let mut c_auto = c0.clone();
        KernelKind::Auto.mul_add(a.view(), b.view(), c_auto.view_mut());
        prop_assert_eq!(&c_auto, &c_naive);
    }

    /// Packed agrees with Naive on `f64` within the standard `k`-scaled
    /// roundoff tolerance (the SIMD body reassociates the inner product
    /// across lanes, so bitwise equality is not expected).
    #[test]
    fn packed_matches_naive_within_tolerance_on_f64(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a: Matrix<f64> = random_matrix(m, k, seed);
        let b: Matrix<f64> = random_matrix(k, n, seed + 1);
        let c0: Matrix<f64> = random_matrix(m, n, seed + 2);

        let mut c_naive = c0.clone();
        Naive.mul_add(a.view(), b.view(), c_naive.view_mut());
        let mut c_packed = c0;
        Packed.mul_add(a.view(), b.view(), c_packed.view_mut());
        assert_matrix_eq(c_packed.view(), c_naive.view(), k);
    }
}
