//! Property tests for the Freivalds verifier: it must accept every
//! correct product (no false alarms, even with Strassen reassociation)
//! and reject corrupted products with overwhelming probability.

use modgemm::core::verify::{verify_gemm, verify_product};
use modgemm::core::{modgemm, ModgemmConfig, Truncation};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_product;
use modgemm::mat::{Matrix, Op};
use modgemm::morton::tiling::TileRange;
use proptest::prelude::*;

fn small_cfg() -> ModgemmConfig {
    ModgemmConfig {
        truncation: Truncation::MinPadding(TileRange::new(4, 16)),
        ..ModgemmConfig::paper()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn never_rejects_a_correct_product(
        m in 1usize..60,
        k in 1usize..60,
        n in 1usize..60,
        seed in 0u64..1000,
    ) {
        let a: Matrix<f64> = random_matrix(m, k, seed);
        let b: Matrix<f64> = random_matrix(k, n, seed + 1);
        let mut c: Matrix<f64> = Matrix::zeros(m, n);
        modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), &small_cfg());
        prop_assert!(verify_product(a.view(), b.view(), c.view(), 8, seed + 2));
    }

    #[test]
    fn rejects_large_single_entry_corruption(
        m in 4usize..50,
        k in 4usize..50,
        n in 4usize..50,
        i_frac in 0.0f64..1.0,
        j_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let a: Matrix<f64> = random_matrix(m, k, seed);
        let b: Matrix<f64> = random_matrix(k, n, seed + 1);
        let mut c = naive_product(&a, &b);
        let i = ((i_frac * m as f64) as usize).min(m - 1);
        let j = ((j_frac * n as f64) as usize).min(n - 1);
        // A corruption far above the roundoff tolerance.
        c.set(i, j, c.get(i, j) + 1.0);
        // 16 rounds: the probability of all rounds drawing x[j] = 0 is
        // 2^-16; accept that as negligible for a deterministic seed.
        prop_assert!(!verify_product(a.view(), b.view(), c.view(), 16, seed + 2));
    }

    #[test]
    fn verifies_full_gemm_semantics(
        m in 2usize..40,
        k in 2usize..40,
        n in 2usize..40,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let a: Matrix<f64> = random_matrix(m, k, seed);
        let b: Matrix<f64> = random_matrix(k, n, seed + 1);
        let c0: Matrix<f64> = random_matrix(m, n, seed + 2);
        let mut c = c0.clone();
        modgemm(alpha, Op::NoTrans, a.view(), Op::NoTrans, b.view(), beta, c.view_mut(), &small_cfg());
        prop_assert!(verify_gemm(
            alpha, Op::NoTrans, a.view(), Op::NoTrans, b.view(), beta,
            c0.view(), c.view(), 8, seed + 3,
        ));
    }
}
