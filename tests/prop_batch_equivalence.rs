//! Property tests for whole-batch scheduling: `gemm_batch_strided`'s
//! single task DAG must be **bit-identical** to looping the per-item
//! plan serially — same products, same kernels, same associativity; the
//! DAG only changes *when* each item's conversion, compute, and unpack
//! run relative to its neighbours. Integer scalars make that checkable
//! with plain equality: a window slot recycled one item too early, an
//! unpack racing a convert, or a broadcast operand read after a
//! neighbour's epilogue all show up as an exact mismatch.
//!
//! The sweep covers every leaf kernel, fuse depths 0..=2 and Auto,
//! thread counts {1, 2, 7} (serial degradation, minimal pool, more
//! workers than one item's top-level products), ragged shapes, strided
//! and broadcast operands, and budget-capped in-flight windows.

use modgemm::core::blas::try_gemm_batch_strided;
use modgemm::core::plan::GemmPlan;
use modgemm::core::{
    BatchPlan, CancelToken, CollectingSink, FuseDepth, GemmContext, GemmError, MemoryBudget,
    ModgemmConfig, NoopSink, StridedBatch, Truncation,
};
use modgemm::mat::{KernelKind, MatMut, MatRef, Op};
use modgemm::morton::TileRange;
use proptest::prelude::*;

/// The thread counts the ISSUE pins: serial degradation (1), a minimal
/// pool (2), and more workers than one item's top-level products (7).
const THREADS: [usize; 3] = [1, 2, 7];

/// Deterministic small-integer fill: values in `[-8, 8]` keep every
/// product and Winograd pre-addition exactly representable in i64, so
/// equality is meaningful.
fn fill_i64(len: usize, seed: u64) -> Vec<i64> {
    (0..len)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            ((x >> 48) as i64) % 17 - 8
        })
        .collect()
}

/// Column-major storage an `rows × cols` view with leading dimension
/// `ld` actually touches.
fn required_len(rows: usize, cols: usize, ld: usize) -> usize {
    if rows == 0 || cols == 0 {
        0
    } else {
        ld * (cols - 1) + rows
    }
}

/// The serial per-item reference: the same `GemmPlan` the batch path
/// compiles around, executed item by item against a warm context over
/// the identical strided slabs. This is exactly the loop
/// `try_gemm_batch` runs — the batched DAG claims bit-identity with it.
#[allow(clippy::too_many_arguments)]
fn serial_reference(
    plan: &GemmPlan<i64>,
    desc: &StridedBatch<'_, i64>,
    c: &mut [i64],
    batch: usize,
) {
    let (m, k, n) = plan.dims();
    let (ar, ac) = desc.op_a.apply_dims(m, k);
    let (br, bc) = desc.op_b.apply_dims(k, n);
    let mut ctx = GemmContext::new();
    for i in 0..batch {
        let a_off = i * desc.stride_a;
        let b_off = i * desc.stride_b;
        let c_off = i * desc.stride_c;
        let av = MatRef::from_slice(
            &desc.a[a_off..a_off + required_len(ar, ac, desc.lda)],
            ar,
            ac,
            desc.lda,
        );
        let bv = MatRef::from_slice(
            &desc.b[b_off..b_off + required_len(br, bc, desc.ldb)],
            br,
            bc,
            desc.ldb,
        );
        let c_len = required_len(m, n, desc.ldc);
        let cv = MatMut::from_slice(&mut c[c_off..c_off + c_len], m, n, desc.ldc);
        plan.try_execute(desc.alpha, desc.op_a, av, desc.op_b, bv, desc.beta, cv, &mut ctx)
            .expect("serial reference item must execute");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One-shot `try_gemm_batch_strided` over ragged shapes, every leaf
    /// kernel, drawn fuse depths, the pinned thread counts, padded
    /// leading dimensions, slack between items, and operand broadcasts:
    /// bit-identical on i64 to the serial per-item loop, on a dirty
    /// (non-zero) C with a drawn `(α, β)` pair.
    #[test]
    fn batched_strided_is_bitwise_serial_on_ragged_i64(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        batch in 1usize..6,
        alpha in -3i64..4,
        beta in -3i64..4,
        kernel_ix in 0usize..KernelKind::ALL.len(),
        fuse_sel in 0usize..4,
        threads_ix in 0usize..THREADS.len(),
        par_depth in 1usize..3,
        pad_a in 0usize..3,
        pad_b in 0usize..3,
        pad_c in 0usize..3,
        slack in 0usize..5,
        broadcast_a in any::<bool>(),
        broadcast_b in any::<bool>(),
        trans_sel in 0usize..4,
        window_knob in 0usize..4,
        seed in 0u64..1000,
    ) {
        let op_a = if trans_sel & 1 == 0 { Op::NoTrans } else { Op::Trans };
        let op_b = if trans_sel & 2 == 0 { Op::NoTrans } else { Op::Trans };
        let (ar, ac) = op_a.apply_dims(m, k);
        let (br, bc) = op_b.apply_dims(k, n);
        let lda = ar + pad_a;
        let ldb = br + pad_b;
        let ldc = m + pad_c;
        // Broadcast pins an operand's stride to 0: every item reads the
        // same panel — the batch DAG must not let any in-flight item's
        // packing scribble over it.
        let stride_a = if broadcast_a { 0 } else { required_len(ar, ac, lda) + slack };
        let stride_b = if broadcast_b { 0 } else { required_len(br, bc, ldb) + slack };
        let stride_c = required_len(m, n, ldc) + slack;

        let a_len = stride_a * (batch - 1) + required_len(ar, ac, lda);
        let b_len = stride_b * (batch - 1) + required_len(br, bc, ldb);
        let c_len = stride_c * (batch - 1) + required_len(m, n, ldc);
        let a = fill_i64(a_len, seed);
        let b = fill_i64(b_len, seed + 1);
        let c0 = fill_i64(c_len, seed + 2);

        let cfg = ModgemmConfig {
            truncation: Truncation::MinPadding(TileRange::new(4, 16)),
            leaf_kernel: KernelKind::ALL[kernel_ix],
            fuse_depth: match fuse_sel {
                0 => FuseDepth::Auto,
                d => FuseDepth::Fixed(d - 1),
            },
            parallel_depth: par_depth,
            threads: THREADS[threads_ix],
            batch_window: window_knob,
            ..ModgemmConfig::paper()
        };
        let desc = StridedBatch {
            alpha, op_a, a: &a, lda, stride_a,
            op_b, b: &b, ldb, stride_b,
            beta, ldc, stride_c,
        };

        let plan = GemmPlan::<i64>::try_new(m, k, n, &cfg).unwrap();
        let mut c_ser = c0.clone();
        serial_reference(&plan, &desc, &mut c_ser, batch);

        let mut c_batched = c0.clone();
        try_gemm_batch_strided(
            op_a, op_b, m, n, k, alpha, &a, lda, stride_a, &b, ldb, stride_b, beta,
            &mut c_batched, ldc, stride_c, batch, &cfg,
        ).unwrap();
        prop_assert_eq!(
            &c_batched, &c_ser,
            "kernel {:?} fuse {:?} threads {} window_knob {}",
            cfg.leaf_kernel, cfg.fuse_depth, cfg.threads, window_knob
        );
    }

    /// A tight [`MemoryBudget`] caps the in-flight window below the
    /// requested one without changing a single bit of the result — the
    /// acceptance property for budget-driven window admission. The
    /// budget also shrinks each item's Strassen depth, so this pins the
    /// interaction of both degradations at once.
    #[test]
    fn budget_capped_window_is_bitwise_serial(
        m in 16usize..48,
        k in 16usize..48,
        n in 16usize..48,
        batch in 2usize..6,
        budget_kib in 1usize..64,
        threads_ix in 0usize..THREADS.len(),
        seed in 0u64..1000,
    ) {
        let cfg = ModgemmConfig {
            truncation: Truncation::MinPadding(TileRange::new(4, 16)),
            memory_budget: MemoryBudget::MaxWorkspaceBytes(budget_kib * 1024),
            parallel_depth: 1,
            threads: THREADS[threads_ix],
            // Ask for the whole batch in flight; the budget must cap it.
            batch_window: batch,
            ..ModgemmConfig::paper()
        };
        let bplan = BatchPlan::<i64>::try_new(m, k, n, batch, &cfg).unwrap();
        prop_assert!(bplan.window() <= batch);

        let one_a = m * k;
        let one_b = k * n;
        let one_c = m * n;
        let a = fill_i64(one_a * batch, seed);
        let b = fill_i64(one_b * batch, seed + 1);
        let c0 = fill_i64(one_c * batch, seed + 2);
        let desc = StridedBatch {
            alpha: 1, op_a: Op::NoTrans, a: &a, lda: m, stride_a: one_a,
            op_b: Op::NoTrans, b: &b, ldb: k, stride_b: one_b,
            beta: 1, ldc: m, stride_c: one_c,
        };

        let plan = GemmPlan::<i64>::try_new(m, k, n, &cfg).unwrap();
        let mut c_ser = c0.clone();
        serial_reference(&plan, &desc, &mut c_ser, batch);

        let mut ctx = GemmContext::new();
        let mut c_batched = c0.clone();
        bplan.try_execute(&desc, &mut c_batched, &mut ctx).unwrap();
        prop_assert_eq!(&c_batched, &c_ser, "window {} of batch {}", bplan.window(), batch);

        // Warm re-execution on the same plan and context is
        // allocation-free and still exact.
        let mut c_again = c0.clone();
        let mut sink = CollectingSink::new();
        bplan.try_execute_with_metrics(&desc, &mut c_again, &mut ctx, &mut sink).unwrap();
        prop_assert_eq!(&c_again, &c_ser);
        let metrics = sink.into_metrics();
        prop_assert_eq!(metrics.temp_alloc_bytes, 0, "warm batch execute must not allocate");
        prop_assert_eq!(metrics.batch_items, batch as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cancelling the batch DAG at every task-dequeue index: each
    /// interrupted run resolves as `Ok` (the token tripped past the last
    /// check) or typed `Cancelled` — never a hang, panic, or partial
    /// corruption that survives — and the warm follow-up execute on the
    /// same context is allocation-free and bit-identical.
    #[test]
    fn cancel_at_every_batch_task_index_keeps_context_warm_and_exact(
        m in 24usize..48,
        k in 24usize..48,
        n in 24usize..48,
        batch in 2usize..5,
        seed in 0u64..1000,
    ) {
        let cfg = ModgemmConfig {
            truncation: Truncation::MinPadding(TileRange::new(4, 16)),
            parallel_depth: 1,
            threads: 4,
            ..ModgemmConfig::paper()
        };
        let bplan = BatchPlan::<i64>::try_new(m, k, n, batch, &cfg).unwrap();
        let tasks = bplan.parallel_tasks() as u64;
        prop_assert!(tasks > 0, "these shapes must compile a whole-batch DAG");

        let one = |r: usize, c: usize| r * c;
        let a = fill_i64(one(m, k) * batch, seed);
        let b = fill_i64(one(k, n) * batch, seed + 1);
        let c0 = fill_i64(one(m, n) * batch, seed + 2);
        let desc = StridedBatch {
            alpha: 1, op_a: Op::NoTrans, a: &a, lda: m, stride_a: one(m, k),
            op_b: Op::NoTrans, b: &b, ldb: k, stride_b: one(k, n),
            beta: 0, ldc: m, stride_c: one(m, n),
        };

        let mut ctx = GemmContext::new();
        let mut c_ref = c0.clone();
        bplan.try_execute(&desc, &mut c_ref, &mut ctx).unwrap();

        for cut in 0..=tasks {
            // Trip the token on its `cut`-th successful check: cut 0 is
            // the pre-flight gate, later cuts land on task-dequeue
            // boundaries across items of the batch DAG.
            let token = CancelToken::cancelling_after(cut);
            let mut c = c0.clone();
            match bplan.try_execute_cancellable_with_metrics(
                &desc, &mut c, &mut ctx, &token, &mut NoopSink,
            ) {
                Ok(()) => prop_assert_eq!(&c, &c_ref, "completed run must be exact (cut {})", cut),
                Err(GemmError::Cancelled) => {}
                other => prop_assert!(false, "unexpected outcome at cut {}: {:?}", cut, other),
            }

            // Whatever the cancel left mid-window, the warm follow-up
            // must be allocation-free and bit-identical.
            let mut c2 = c0.clone();
            let mut sink = CollectingSink::new();
            bplan.try_execute_with_metrics(&desc, &mut c2, &mut ctx, &mut sink).unwrap();
            prop_assert_eq!(&c2, &c_ref, "follow-up after cut {} must be exact", cut);
            prop_assert_eq!(sink.into_metrics().temp_alloc_bytes, 0,
                "follow-up after cut {} must be allocation-free", cut);
        }
    }
}

/// Harness sanity (not a property): one deterministic broadcast batch so
/// a broken `fill_i64`, `required_len`, or reference-loop assumption
/// fails loudly rather than making the properties vacuous.
#[test]
fn harness_sanity() {
    let (m, k, n, batch) = (8usize, 8usize, 8usize, 3usize);
    let cfg = ModgemmConfig::default();
    let a = fill_i64(m * k, 5);
    let b = fill_i64(k * n * batch, 6);
    let mut c = vec![0i64; m * n * batch];
    try_gemm_batch_strided(
        Op::NoTrans,
        Op::NoTrans,
        m,
        n,
        k,
        1,
        &a,
        m,
        0, // broadcast A across the batch
        &b,
        k,
        k * n,
        0,
        &mut c,
        m,
        m * n,
        batch,
        &cfg,
    )
    .unwrap();
    let plan = GemmPlan::<i64>::try_new(m, k, n, &cfg).unwrap();
    let desc = StridedBatch {
        alpha: 1,
        op_a: Op::NoTrans,
        a: &a,
        lda: m,
        stride_a: 0,
        op_b: Op::NoTrans,
        b: &b,
        ldb: k,
        stride_b: k * n,
        beta: 0,
        ldc: m,
        stride_c: m * n,
    };
    let mut c_ser = vec![0i64; m * n * batch];
    serial_reference(&plan, &desc, &mut c_ser, batch);
    assert_eq!(c, c_ser);
    assert!(fill_i64(64, 1).iter().any(|&x| x != 0));
}
