//! Property tests driving the raw Morton executor across arbitrary tile
//! shapes and recursion depths (the `modgemm` interface only ever uses
//! planner-chosen shapes; these reach the rest of the space).

use modgemm::core::{strassen_mul, workspace_len, ExecPolicy, NodeLayouts, Variant};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_product;
use modgemm::mat::{Matrix, Op};
use modgemm::morton::convert::{from_morton, to_morton};
use modgemm::morton::MortonLayout;
use proptest::prelude::*;

fn run_exec(
    a: &Matrix<i64>,
    b: &Matrix<i64>,
    tm: usize,
    tk: usize,
    tn: usize,
    depth: usize,
    policy: ExecPolicy,
) -> Matrix<i64> {
    let la = MortonLayout::new(tm, tk, depth);
    let lb = MortonLayout::new(tk, tn, depth);
    let lc = MortonLayout::new(tm, tn, depth);
    let layouts = NodeLayouts::new(la, lb, lc);
    let mut ab = vec![0i64; la.len()];
    let mut bb = vec![0i64; lb.len()];
    let mut cb = vec![0i64; lc.len()];
    to_morton(a.view(), Op::NoTrans, &la, &mut ab);
    to_morton(b.view(), Op::NoTrans, &lb, &mut bb);
    let mut ws = vec![0i64; workspace_len(layouts, policy)];
    strassen_mul(&ab, &bb, &mut cb, layouts, &mut ws, policy);
    let mut out = Matrix::zeros(a.rows(), b.cols());
    from_morton(&cb, &lc, out.view_mut());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn executor_is_exact_for_any_tile_shape(
        tm in 1usize..7,
        tk in 1usize..7,
        tn in 1usize..7,
        depth in 0usize..4,
        pad_m in 0usize..3,
        pad_k in 0usize..3,
        pad_n in 0usize..3,
        strassen_min in prop_oneof![Just(0usize), Just(8), Just(usize::MAX)],
        winograd in any::<bool>(),
        seed in 0u64..1000,
    ) {
        // Logical sizes at most the padded sizes, shrunk a little to
        // exercise zero-padding.
        let (pm, pk, pn) = (tm << depth, tk << depth, tn << depth);
        let m = pm.saturating_sub(pad_m).max(1);
        let k = pk.saturating_sub(pad_k).max(1);
        let n = pn.saturating_sub(pad_n).max(1);

        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 1);
        let policy = ExecPolicy {
            strassen_min,
            variant: if winograd { Variant::Winograd } else { Variant::Strassen },
            ..ExecPolicy::default()
        };
        let got = run_exec(&a, &b, tm, tk, tn, depth, policy);
        prop_assert_eq!(got, naive_product(&a, &b));
    }
}
