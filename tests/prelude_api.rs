//! The `modgemm::prelude` surface: everything a typical caller needs,
//! importable with one line.

use modgemm::prelude::*;

#[test]
fn prelude_covers_the_typical_call() {
    let a: Matrix<f64> = Matrix::from_fn(20, 30, |i, j| (i + 2 * j) as f64 / 10.0);
    let b: Matrix<f64> = Matrix::from_fn(30, 10, |i, j| (3 * i + j) as f64 / 10.0);
    let mut c: Matrix<f64> = Matrix::zeros(20, 10);
    let cfg = ModgemmConfig::paper();
    modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), &cfg);

    let mut expect: Matrix<f64> = Matrix::zeros(20, 10);
    modgemm::mat::naive::naive_mul(a.view(), b.view(), expect.view_mut());
    modgemm::mat::norms::assert_matrix_eq(c.view(), expect.view(), 30);
}

#[test]
fn prelude_exposes_configuration_types() {
    let cfg = ModgemmConfig {
        truncation: Truncation::MinPadding(TileRange::new(8, 32)),
        variant: Variant::Strassen,
        ..ModgemmConfig::paper()
    };
    assert!(cfg.plan(100, 100, 100).is_some());

    let layout = MortonLayout::new(16, 16, 2);
    assert_eq!(layout.rows(), 64);

    let mut ctx: GemmContext<f64> = GemmContext::new();
    ctx.reserve_for(64, 64, 64, &cfg);
    assert!(ctx.footprint() > 0);
}

#[test]
fn prelude_fallible_entry_point() {
    let a: Matrix<f64> = Matrix::zeros(3, 4);
    let b: Matrix<f64> = Matrix::zeros(5, 2);
    let mut c: Matrix<f64> = Matrix::zeros(3, 2);
    assert_eq!(
        try_modgemm(
            1.0,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0.0,
            c.view_mut(),
            &ModgemmConfig::paper()
        ),
        Err(GemmError::InnerDimMismatch { a_cols: 4, b_rows: 5 })
    );
}

#[test]
fn prelude_exposes_error_and_policy_types() {
    // The robustness vocabulary is importable with the one-line prelude:
    // the error taxonomy, operand names, and all degradation policies.
    let cfg = ModgemmConfig {
        memory_budget: MemoryBudget::MaxWorkspaceBytes(8 * 1024),
        non_finite: NonFinitePolicy::Reject,
        verify: VerifyMode::Freivalds { rounds: 4, seed: 7 },
        ..ModgemmConfig::paper()
    };
    assert!(cfg.validate().is_ok());

    let a: Matrix<f64> = Matrix::from_fn(33, 33, |i, j| (i * 33 + j) as f64 / 100.0);
    let b: Matrix<f64> = Matrix::from_fn(33, 33, |i, j| (i + j) as f64 / 100.0);
    let mut c: Matrix<f64> = Matrix::zeros(33, 33);
    try_modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), &cfg)
        .expect("budgeted, verified multiply of finite operands succeeds");

    let err = GemmError::SliceTooShort { operand: Operand::C, needed: 10, got: 3 };
    assert!(err.to_string().contains("too short"));
}

#[test]
fn prelude_covers_the_raw_slice_entry_points() {
    let cfg = ModgemmConfig::paper();
    let a = vec![1.0f64; 6];
    let b = vec![1.0f64; 6];
    let mut c = vec![0.0f64; 4];
    try_dgemm(Op::NoTrans, Op::NoTrans, 2, 2, 3, 1.0, &a, 2, &b, 3, 0.0, &mut c, 2, &cfg).unwrap();
    assert_eq!(c, vec![3.0; 4]);

    let af = vec![1.0f32; 6];
    let bf = vec![1.0f32; 6];
    let mut cf = vec![0.0f32; 4];
    try_sgemm(Op::NoTrans, Op::NoTrans, 2, 2, 3, 1.0, &af, 2, &bf, 3, 0.0, &mut cf, 2, &cfg)
        .unwrap();
    assert_eq!(cf, vec![3.0f32; 4]);

    // Generic and complex variants resolve through the same prelude.
    let ai = vec![1i64; 6];
    let bi = vec![1i64; 6];
    let mut ci = vec![0i64; 4];
    try_gemm(Op::NoTrans, Op::NoTrans, 2, 2, 3, 1, &ai, 2, &bi, 3, 0, &mut ci, 2, &cfg).unwrap();
    assert_eq!(ci, vec![3; 4]);

    use modgemm::mat::complex::C64;
    let az = vec![C64::new(1.0, 0.0); 6];
    let bz = vec![C64::new(1.0, 0.0); 6];
    let mut cz = vec![C64::new(0.0, 0.0); 4];
    try_zgemm(
        Op::NoTrans,
        Op::NoTrans,
        2,
        2,
        3,
        C64::new(1.0, 0.0),
        &az,
        2,
        &bz,
        3,
        C64::new(0.0, 0.0),
        &mut cz,
        2,
        &cfg,
    )
    .unwrap();
    assert_eq!(cz, vec![C64::new(3.0, 0.0); 4]);

    // Batched form with a deliberate length skew: typed error.
    let refs_a: Vec<&[f64]> = vec![&a];
    let refs_b: Vec<&[f64]> = vec![];
    let mut c2 = vec![0.0f64; 4];
    let mut refs_c: Vec<&mut [f64]> = vec![&mut c2];
    assert_eq!(
        try_gemm_batch(2, 2, 3, 1.0, 0.0, &refs_a, &refs_b, &mut refs_c, &cfg),
        Err(GemmError::BatchLenMismatch { a: 1, b: 0, c: 1 })
    );
}
