//! The `modgemm::prelude` surface: everything a typical caller needs,
//! importable with one line.

use modgemm::prelude::*;

#[test]
fn prelude_covers_the_typical_call() {
    let a: Matrix<f64> = Matrix::from_fn(20, 30, |i, j| (i + 2 * j) as f64 / 10.0);
    let b: Matrix<f64> = Matrix::from_fn(30, 10, |i, j| (3 * i + j) as f64 / 10.0);
    let mut c: Matrix<f64> = Matrix::zeros(20, 10);
    let cfg = ModgemmConfig::paper();
    modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), &cfg);

    let mut expect: Matrix<f64> = Matrix::zeros(20, 10);
    modgemm::mat::naive::naive_mul(a.view(), b.view(), expect.view_mut());
    modgemm::mat::norms::assert_matrix_eq(c.view(), expect.view(), 30);
}

#[test]
fn prelude_exposes_configuration_types() {
    let cfg = ModgemmConfig {
        truncation: Truncation::MinPadding(TileRange::new(8, 32)),
        variant: Variant::Strassen,
        ..ModgemmConfig::paper()
    };
    assert!(cfg.plan(100, 100, 100).is_some());

    let layout = MortonLayout::new(16, 16, 2);
    assert_eq!(layout.rows(), 64);

    let mut ctx: GemmContext<f64> = GemmContext::new();
    ctx.reserve_for(64, 64, 64, &cfg);
    assert!(ctx.footprint() > 0);
}

#[test]
fn prelude_fallible_entry_point() {
    let a: Matrix<f64> = Matrix::zeros(3, 4);
    let b: Matrix<f64> = Matrix::zeros(5, 2);
    let mut c: Matrix<f64> = Matrix::zeros(3, 2);
    assert!(try_modgemm(
        1.0,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0.0,
        c.view_mut(),
        &ModgemmConfig::paper()
    )
    .is_err());
}
