//! Property tests for the autotuner's cardinal invariant: a tuning
//! profile changes *which* plan is built, never *what* it computes.
//!
//! * For every [`TuningMode`] — `Off`, `Profile` (whatever profile the
//!   host happens to have loaded, if any), and `Forced` over random
//!   operating points — planned execution on **integer** matrices is
//!   bit-identical to the untuned path. Integer arithmetic leaves no
//!   tolerance to hide behind: any tuned plan that computed a different
//!   product would be caught exactly.
//! * Tuned `try_*` planning stays total: garbage forced choices surface
//!   as typed [`GemmError`]s (or plan fine after the precedence guards),
//!   never as panics.

use modgemm::core::plan::GemmPlan;
use modgemm::core::tune::{TunedChoice, TuningMode};
use modgemm::core::{try_modgemm, GemmContext, GemmError, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::{KernelKind, Matrix, Op};
use proptest::prelude::*;

/// Decodes a drawn selector into a tuning mode: 0 = Off, 1 = Profile
/// (consults the process-global profile — usually absent under `cargo
/// test`, which is itself a mode worth covering), ≥2 = Forced over the
/// drawn knobs.
#[allow(clippy::too_many_arguments)]
fn decode_mode(
    selector: usize,
    tile_lo: usize,
    tile_width: usize,
    strassen_min: usize,
    kernel_sel: usize,
    parallel_depth: usize,
    threads: usize,
    fuse_depth: usize,
) -> TuningMode {
    match selector {
        0 => TuningMode::Off,
        1 => TuningMode::Profile,
        _ => TuningMode::Forced(TunedChoice {
            tile_min: tile_lo,
            tile_max: tile_lo + tile_width,
            strassen_min,
            kernel: KernelKind::ALL[kernel_sel % KernelKind::ALL.len()],
            parallel_depth,
            threads,
            fuse_depth,
            batch_window: selector % 4,
            // The schedule-tier axis rides the same draw: every tier is
            // bit-identical on integers, so a tuned pin must be too.
            schedule: modgemm::core::Schedule::ALL[selector % 3],
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Planned execution under any tuning mode is bit-identical on i64
    /// to the untuned one-shot path, for random shapes, scaling pairs,
    /// and delegating/pinned kernel configurations.
    #[test]
    fn tuned_plans_compute_bit_identical_products(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        alpha in -3i64..4,
        beta in -3i64..4,
        mode_sel in 0usize..4,
        tile_lo in 2usize..8,
        tile_width in 4usize..20,
        strassen_min in 0usize..12,
        kernel_sel in 0usize..5,
        parallel_depth in 0usize..3,
        threads in 0usize..4,
        fuse_depth in 0usize..4,
        auto_kernel in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let tuning = decode_mode(
            mode_sel, tile_lo, tile_width, strassen_min, kernel_sel, parallel_depth, threads,
            fuse_depth,
        );
        // Both the delegating posture (Auto, where the profile's kernel
        // choice lands) and the pinned default (Blocked, where it must
        // not) are covered.
        let leaf_kernel = if auto_kernel { KernelKind::Auto } else { KernelKind::Blocked };
        let cfg = ModgemmConfig { tuning, leaf_kernel, ..Default::default() };
        let untuned = ModgemmConfig { leaf_kernel, ..Default::default() };

        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 1);
        let c0: Matrix<i64> = random_matrix(m, n, seed + 2);

        let mut c_untuned = c0.clone();
        try_modgemm(
            alpha, Op::NoTrans, a.view(), Op::NoTrans, b.view(), beta,
            c_untuned.view_mut(), &untuned,
        )
        .expect("untuned path must accept well-formed operands");

        let plan = match GemmPlan::<i64>::try_new(m, k, n, &cfg) {
            Ok(p) => p,
            // The typed-failure contract: a corrupt host profile (or a
            // forced choice the validator rejects) is InvalidConfig,
            // never a panic — and then there is nothing to compare.
            Err(GemmError::InvalidConfig { .. }) => return,
            Err(other) => panic!("unexpected planning error: {other}"),
        };
        let mut ctx = GemmContext::new();
        let mut c_tuned = c0.clone();
        plan.try_execute(
            alpha, Op::NoTrans, a.view(), Op::NoTrans, b.view(), beta,
            c_tuned.view_mut(), &mut ctx,
        )
        .expect("tuned planned path must accept matching operands");
        prop_assert_eq!(&c_tuned, &c_untuned);

        // Warm re-execution on the tuned plan agrees too.
        let mut c_again = c0.clone();
        plan.try_execute(
            alpha, Op::NoTrans, a.view(), Op::NoTrans, b.view(), beta,
            c_again.view_mut(), &mut ctx,
        )
        .expect("warm tuned re-execution must succeed");
        prop_assert_eq!(&c_again, &c_untuned);
    }

    /// Forced tuning never interferes with an explicitly pinned
    /// configuration: when every tunable knob is pinned, the tuned plan
    /// reports no profile hit influence on those knobs — the product
    /// (and the concrete kernel) match the pinned untuned plan exactly.
    #[test]
    fn pinned_config_beats_forced_profile(
        m in 8usize..40,
        k in 8usize..40,
        n in 8usize..40,
        kernel_sel in 0usize..4,
        forced_kernel_sel in 0usize..4,
        seed in 0u64..1000,
    ) {
        // Concrete kinds only (Auto is the delegating posture).
        let pinned = [KernelKind::Naive, KernelKind::Blocked, KernelKind::Micro,
                      KernelKind::Packed][kernel_sel];
        let forced = [KernelKind::Naive, KernelKind::Blocked, KernelKind::Micro,
                      KernelKind::Packed][forced_kernel_sel];
        let choice = TunedChoice {
            kernel: forced,
            strassen_min: 64,
            ..TunedChoice::baseline()
        };
        let cfg = ModgemmConfig {
            leaf_kernel: pinned,
            strassen_min: 4,
            tuning: TuningMode::Forced(choice),
            ..Default::default()
        };
        let untuned = ModgemmConfig {
            leaf_kernel: pinned,
            strassen_min: 4,
            ..Default::default()
        };
        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 1);
        let mut c_tuned: Matrix<i64> = Matrix::zeros(m, n);
        let mut c_untuned: Matrix<i64> = Matrix::zeros(m, n);
        let mut ctx = GemmContext::new();
        let plan = GemmPlan::<i64>::try_new(m, k, n, &cfg).expect("valid config must plan");
        plan.try_execute(
            1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
            c_tuned.view_mut(), &mut ctx,
        ).expect("tuned pinned plan must execute");
        try_modgemm(
            1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
            c_untuned.view_mut(), &untuned,
        ).expect("untuned pinned path must execute");
        prop_assert_eq!(&c_tuned, &c_untuned);
    }
}
