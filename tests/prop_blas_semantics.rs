//! Property-based tests: for arbitrary dimensions, scalars, and operand
//! ops, every implementation obeys the BLAS `gemm` contract. Integer
//! elements make the properties exact (no tolerance juggling), which is
//! precisely why the element trait has an `i64` instance.

use modgemm::baselines::{dgefmm, dgemmw, DgefmmConfig, DgemmwConfig};
use modgemm::core::{modgemm, ModgemmConfig, Truncation};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_gemm;
use modgemm::mat::{Matrix, Op};
use modgemm::morton::tiling::TileRange;
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::NoTrans), Just(Op::Trans)]
}

/// Small tile range so small proptest cases still exercise real Strassen
/// recursion (depth ≥ 1 needs min dim ≥ 2·Tmin = 8).
fn small_cfg() -> ModgemmConfig {
    ModgemmConfig {
        truncation: Truncation::MinPadding(TileRange::new(4, 16)),
        ..ModgemmConfig::paper()
    }
}

#[allow(clippy::too_many_arguments)]
fn oracle(
    m: usize,
    k: usize,
    n: usize,
    alpha: i64,
    beta: i64,
    op_a: Op,
    op_b: Op,
    seed: u64,
) -> (Matrix<i64>, Matrix<i64>, Matrix<i64>, Matrix<i64>) {
    let (ar, ac) = op_a.apply_dims(m, k);
    let (br, bc) = op_b.apply_dims(k, n);
    let a: Matrix<i64> = random_matrix(ar, ac, seed);
    let b: Matrix<i64> = random_matrix(br, bc, seed + 1);
    let c0: Matrix<i64> = random_matrix(m, n, seed + 2);
    let mut expect = c0.clone();
    naive_gemm(alpha, op_a, a.view(), op_b, b.view(), beta, expect.view_mut());
    (a, b, c0, expect)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn modgemm_obeys_gemm_contract(
        m in 1usize..80,
        k in 1usize..80,
        n in 1usize..80,
        alpha in -3i64..=3,
        beta in -3i64..=3,
        op_a in op_strategy(),
        op_b in op_strategy(),
        seed in 0u64..1000,
    ) {
        let (a, b, c0, expect) = oracle(m, k, n, alpha, beta, op_a, op_b, seed);
        let mut c = c0;
        modgemm(alpha, op_a, a.view(), op_b, b.view(), beta, c.view_mut(), &small_cfg());
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn dgefmm_obeys_gemm_contract(
        m in 1usize..80,
        k in 1usize..80,
        n in 1usize..80,
        alpha in -3i64..=3,
        beta in -3i64..=3,
        op_a in op_strategy(),
        op_b in op_strategy(),
        seed in 0u64..1000,
    ) {
        let (a, b, c0, expect) = oracle(m, k, n, alpha, beta, op_a, op_b, seed);
        let mut c = c0;
        dgefmm(alpha, op_a, a.view(), op_b, b.view(), beta, c.view_mut(),
               &DgefmmConfig { truncation: 4, ..Default::default() });
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn dgemmw_obeys_gemm_contract(
        m in 1usize..80,
        k in 1usize..80,
        n in 1usize..80,
        alpha in -3i64..=3,
        beta in -3i64..=3,
        op_a in op_strategy(),
        op_b in op_strategy(),
        seed in 0u64..1000,
    ) {
        let (a, b, c0, expect) = oracle(m, k, n, alpha, beta, op_a, op_b, seed);
        let mut c = c0;
        dgemmw(alpha, op_a, a.view(), op_b, b.view(), beta, c.view_mut(),
               &DgemmwConfig { truncation: 4, ..Default::default() });
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn rectangular_splitting_is_exact(
        m in 1usize..40,
        k in 200usize..400,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // Force the wide-A/lean-B split path (k much larger than m, n).
        let (a, b, c0, expect) = oracle(m, k, n, 1, 1, Op::NoTrans, Op::NoTrans, seed);
        let mut c = c0;
        modgemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 1, c.view_mut(), &small_cfg());
        prop_assert_eq!(c, expect);
    }
}
