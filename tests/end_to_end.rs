//! End-to-end scenarios a downstream user would actually run: iterative
//! numerical kernels built on the `modgemm` public API.

use modgemm::core::{modgemm, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_product;
use modgemm::mat::norms::{assert_matrix_eq, frob_norm, max_abs_diff};
use modgemm::mat::{Matrix, Op};

fn mm(a: &Matrix<f64>, b: &Matrix<f64>, cfg: &ModgemmConfig) -> Matrix<f64> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), cfg);
    c
}

#[test]
fn matrix_power_via_repeated_squaring() {
    // Compute M^8 by squaring three times and compare against the naive
    // chain — errors compound across calls, a realistic usage pattern.
    let n = 120;
    let cfg = ModgemmConfig::paper();
    // Scale entries down so powers stay well-conditioned.
    let m0: Matrix<f64> = {
        let r: Matrix<f64> = random_matrix(n, n, 1);
        Matrix::from_fn(n, n, |i, j| r.get(i, j) / n as f64)
    };

    let mut fast = m0.clone();
    for _ in 0..3 {
        fast = mm(&fast, &fast, &cfg);
    }

    let mut slow = m0.clone();
    for _ in 0..7 {
        slow = naive_product(&slow, &m0);
    }

    let scale = frob_norm(slow.view()).max(1e-30);
    let diff = max_abs_diff(fast.view(), slow.view());
    assert!(diff / scale < 1e-10, "relative drift {:.3e}", diff / scale);
}

#[test]
fn gram_matrix_with_transpose_interface() {
    // G = Aᵀ·A must be symmetric (up to roundoff) and PSD-diagonal.
    let (m, n) = (150, 90);
    let a: Matrix<f64> = random_matrix(m, n, 2);
    let cfg = ModgemmConfig::paper();
    let mut g: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(1.0, Op::Trans, a.view(), Op::NoTrans, a.view(), 0.0, g.view_mut(), &cfg);

    for i in 0..n {
        assert!(g.get(i, i) >= 0.0, "diagonal must be nonnegative");
        for j in 0..n {
            assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-10, "asymmetry at ({i},{j})");
        }
    }
    let expect = naive_product(&a.transposed(), &a);
    assert_matrix_eq(g.view(), expect.view(), m);
}

#[test]
fn accumulating_block_products() {
    // C = Σ_i A_i · B_i via β = 1 accumulation (the k-split pattern).
    let (m, k, n, blocks) = (64, 48, 80, 4);
    let cfg = ModgemmConfig::paper();
    let aa: Vec<Matrix<f64>> = (0..blocks).map(|i| random_matrix(m, k, 10 + i as u64)).collect();
    let bb: Vec<Matrix<f64>> = (0..blocks).map(|i| random_matrix(k, n, 20 + i as u64)).collect();

    let mut c: Matrix<f64> = Matrix::zeros(m, n);
    for (a, b) in aa.iter().zip(&bb) {
        modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 1.0, c.view_mut(), &cfg);
    }

    let mut expect: Matrix<f64> = Matrix::zeros(m, n);
    for (a, b) in aa.iter().zip(&bb) {
        let p = naive_product(a, b);
        for i in 0..m {
            for j in 0..n {
                expect.set(i, j, expect.get(i, j) + p.get(i, j));
            }
        }
    }
    assert_matrix_eq(c.view(), expect.view(), k * blocks);
}

#[test]
fn power_iteration_dominant_eigenvalue() {
    // Power iteration on a symmetric PSD matrix: modgemm drives the
    // matrix-matrix steps; the dominant eigenvalue must match a naive
    // run to high precision.
    let n = 100;
    let cfg = ModgemmConfig::paper();
    let a: Matrix<f64> = random_matrix(n, n, 3);
    // S = AᵀA is symmetric PSD.
    let mut s: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(1.0, Op::Trans, a.view(), Op::NoTrans, a.view(), 0.0, s.view_mut(), &cfg);

    // Iterate on an n×1 block (matrix-vector through the same interface).
    let mut v: Matrix<f64> = random_matrix(n, 1, 4);
    let mut lambda = 0.0f64;
    for _ in 0..400 {
        let mut w: Matrix<f64> = Matrix::zeros(n, 1);
        modgemm(1.0, Op::NoTrans, s.view(), Op::NoTrans, v.view(), 0.0, w.view_mut(), &cfg);
        let norm = frob_norm(w.view());
        lambda = norm / frob_norm(v.view()).max(1e-300);
        v = Matrix::from_fn(n, 1, |i, _| w.get(i, 0) / norm);
    }

    // Rayleigh quotient check: ‖S·v − λ·v‖ small.
    let mut sv: Matrix<f64> = Matrix::zeros(n, 1);
    modgemm(1.0, Op::NoTrans, s.view(), Op::NoTrans, v.view(), 0.0, sv.view_mut(), &cfg);
    let resid = (0..n).map(|i| (sv.get(i, 0) - lambda * v.get(i, 0)).abs()).fold(0.0f64, f64::max);
    assert!(resid < 1e-5 * lambda.max(1.0), "residual {resid:.3e} for lambda {lambda:.3e}");
}
