//! Property tests for the fallible (`try_*`) entry points: malformed
//! shapes, leading dimensions, slice lengths, workspaces, and non-finite
//! operands must surface as typed [`GemmError`]s — never as panics — and
//! the degradation policies (memory budget, conventional fallback) must
//! still produce correct products.
//!
//! The `proptest!` harness wraps each case in `catch_unwind`, so any
//! panic escaping a `try_*` call fails the property with the drawn
//! inputs; most properties therefore assert *outcomes* (Ok ⇔ the
//! arguments were legal, and Ok ⇒ the numbers are right).

use modgemm::core::blas::{try_dgemm, try_gemm, try_gemm_batch};
use modgemm::core::{
    layouts_of, try_modgemm, try_strassen_mul, ExecPolicy, GemmError, MemoryBudget, ModgemmConfig,
    NonFinitePolicy, Operand, Truncation, Variant, VerifyMode,
};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_gemm;
use modgemm::mat::view::required_len;
use modgemm::mat::{Matrix, Op};
use modgemm::morton::tiling::{choose_joint_tiling, TileRange};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::NoTrans), Just(Op::Trans)]
}

/// Small tile range so small cases still recurse.
fn small_cfg() -> ModgemmConfig {
    ModgemmConfig {
        truncation: Truncation::MinPadding(TileRange::new(4, 16)),
        ..ModgemmConfig::paper()
    }
}

/// Deterministic fill for raw slices (values in roughly ±8).
fn fill(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            ((x >> 40) as i64 as f64).rem_euclid(17.0) - 8.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary — frequently illegal — raw-slice arguments: `try_dgemm`
    /// must return, and Ok must imply a correct product.
    #[test]
    fn try_dgemm_is_total_and_correct_when_ok(
        m in 0usize..24,
        n in 0usize..24,
        k in 0usize..24,
        lda in 0usize..32,
        ldb in 0usize..32,
        ldc in 0usize..32,
        alen in 0usize..900,
        blen in 0usize..900,
        clen in 0usize..900,
        transa in op_strategy(),
        transb in op_strategy(),
        seed in 0u64..1000,
    ) {
        let a = fill(alen, seed);
        let b = fill(blen, seed + 1);
        let c0 = fill(clen, seed + 2);
        let mut c = c0.clone();
        let result = try_dgemm(
            transa, transb, m, n, k, 1.0, &a, lda, &b, ldb, 0.5, &mut c, ldc, &small_cfg(),
        );
        // Legality, recomputed independently of the library's checker.
        let (ar, ac) = transa.apply_dims(m, k);
        let (br, bc) = transb.apply_dims(k, n);
        let legal = lda >= ar.max(1)
            && ldb >= br.max(1)
            && ldc >= m.max(1)
            && alen >= required_len(ar, ac, lda)
            && blen >= required_len(br, bc, ldb)
            && clen >= required_len(m, n, ldc);
        prop_assert_eq!(result.is_ok(), legal, "result {:?}", result);
        if legal {
            // Untouched padding outside the (m, n, ldc) window…
            let window = required_len(m, n, ldc);
            prop_assert!(c[window..] == c0[window..]);
            // …and the window itself matches the naive oracle.
            let mut expect = c0;
            naive_gemm(
                1.0,
                transa,
                modgemm::mat::MatRef::from_slice(&a, ar, ac, lda),
                transb,
                modgemm::mat::MatRef::from_slice(&b, br, bc, ldb),
                0.5,
                modgemm::mat::MatMut::from_slice(&mut expect, m, n, ldc),
            );
            for (i, (&x, &y)) in c[..window].iter().zip(&expect[..window]).enumerate() {
                prop_assert!((x - y).abs() <= 1e-8 * (1.0 + y.abs()), "index {i}: {x} vs {y}");
            }
        }
    }

    /// Every single-argument corruption of a legal call is rejected with
    /// the matching typed error.
    #[test]
    fn each_corruption_yields_its_typed_error(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..20,
        pad in 0usize..4,
        which in 0usize..5,
        seed in 0u64..1000,
    ) {
        let (lda, ldb, ldc) = (m + pad, k + pad, m + pad);
        let a = fill(required_len(m, k, lda), seed);
        let b = fill(required_len(k, n, ldb), seed + 1);
        let mut c = fill(required_len(m, n, ldc), seed + 2);
        let cfg = small_cfg();
        let err = match which {
            0 => try_dgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, &a, m - 1, &b, ldb, 0.0, &mut c, ldc, &cfg),
            1 => try_dgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, &a, lda, &b, k - 1, 0.0, &mut c, ldc, &cfg),
            2 => try_dgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, &a, lda, &b, ldb, 0.0, &mut c, m - 1, &cfg),
            3 => try_dgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, &a[..a.len() - 1], lda, &b, ldb, 0.0, &mut c, ldc, &cfg),
            _ => {
                let short = c.len() - 1;
                try_dgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, &a, lda, &b, ldb, 0.0, &mut c[..short], ldc, &cfg)
            }
        }
        .unwrap_err();
        match which {
            0 => prop_assert_eq!(err, GemmError::BadLeadingDim { operand: Operand::A, ld: m - 1, min: m }),
            1 => prop_assert_eq!(err, GemmError::BadLeadingDim { operand: Operand::B, ld: k - 1, min: k }),
            2 => prop_assert_eq!(err, GemmError::BadLeadingDim { operand: Operand::C, ld: m - 1, min: m }),
            3 => prop_assert!(matches!(err, GemmError::SliceTooShort { operand: Operand::A, .. }), "{err:?}"),
            _ => prop_assert!(matches!(err, GemmError::SliceTooShort { operand: Operand::C, .. }), "{err:?}"),
        }
    }

    /// View-level shape mismatches through `try_modgemm`.
    #[test]
    fn try_modgemm_rejects_mismatched_views(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..20,
        skew in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a: Matrix<f64> = random_matrix(m, k, seed);
        let b_bad: Matrix<f64> = random_matrix(k + skew, n, seed + 1);
        let mut c: Matrix<f64> = Matrix::zeros(m, n);
        prop_assert_eq!(
            try_modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b_bad.view(), 0.0,
                        c.view_mut(), &small_cfg()),
            Err(GemmError::InnerDimMismatch { a_cols: k, b_rows: k + skew })
        );
        let b: Matrix<f64> = random_matrix(k, n, seed + 1);
        let mut c_bad: Matrix<f64> = Matrix::zeros(m + skew, n);
        prop_assert_eq!(
            try_modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0,
                        c_bad.view_mut(), &small_cfg()),
            Err(GemmError::OutputDimMismatch { expected: (m, n), got: (m + skew, n) })
        );
    }

    /// Raw executor: an undersized workspace (or skewed Morton buffers)
    /// is a typed error, and a sufficient workspace succeeds.
    #[test]
    fn try_strassen_mul_workspace_and_buffer_errors(
        dim in 1usize..30,
        shortfall in 1usize..64,
        seed in 0u64..1000,
    ) {
        let plan = choose_joint_tiling(dim, dim, dim, TileRange::new(4, 16))
            .expect("square problems always admit a joint tiling");
        let layouts = layouts_of(&plan);
        let policy =
            ExecPolicy { strassen_min: 8, variant: Variant::Winograd, ..ExecPolicy::default() };
        let need = modgemm::core::workspace_len(layouts, policy);
        let a = fill(layouts.a.len(), seed);
        let b = fill(layouts.b.len(), seed + 1);
        let mut c = vec![0.0f64; layouts.c.len()];

        if need > 0 {
            let mut ws = vec![0.0f64; need.saturating_sub(shortfall)];
            if ws.len() < need {
                prop_assert_eq!(
                    try_strassen_mul(&a, &b, &mut c, layouts, &mut ws, policy),
                    Err(GemmError::WorkspaceTooSmall { needed: need, got: ws.len() })
                );
            }
        }
        let mut short_a = a.clone();
        short_a.pop();
        let mut ws = vec![0.0f64; need];
        prop_assert_eq!(
            try_strassen_mul(&short_a, &b, &mut c, layouts, &mut ws, policy),
            Err(GemmError::BufferLenMismatch {
                operand: Operand::A,
                needed: layouts.a.len(),
                got: layouts.a.len() - 1,
            })
        );
        prop_assert_eq!(try_strassen_mul(&a, &b, &mut c, layouts, &mut ws, policy), Ok(()));
    }

    /// Any memory budget — including zero — degrades recursion depth but
    /// never correctness (exact on integers).
    #[test]
    fn memory_budget_never_costs_correctness(
        m in 1usize..60,
        k in 1usize..60,
        n in 1usize..60,
        budget_bytes in 0usize..32_768,
        seed in 0u64..1000,
    ) {
        let cfg = ModgemmConfig {
            memory_budget: MemoryBudget::MaxWorkspaceBytes(budget_bytes),
            ..small_cfg()
        };
        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 1);
        let c0: Matrix<i64> = random_matrix(m, n, seed + 2);
        let mut c = c0.clone();
        try_modgemm(2, Op::NoTrans, a.view(), Op::NoTrans, b.view(), -1, c.view_mut(), &cfg)
            .unwrap();
        let mut expect = c0;
        naive_gemm(2, Op::NoTrans, a.view(), Op::NoTrans, b.view(), -1, expect.view_mut());
        prop_assert_eq!(c, expect);
    }

    /// Non-finite operands: `Reject` names the poisoned operand,
    /// `FallbackConventional` agrees with the conventional baseline
    /// bit-for-bit, and neither path panics.
    #[test]
    fn non_finite_policies_are_total(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        poison_b in any::<bool>(),
        use_inf in any::<bool>(),
        pos in 0usize..1000,
        seed in 0u64..1000,
    ) {
        let mut a: Matrix<f64> = random_matrix(m, k, seed);
        let mut b: Matrix<f64> = random_matrix(k, n, seed + 1);
        let bad = if use_inf { f64::INFINITY } else { f64::NAN };
        if poison_b {
            b.set(pos % k, (pos / k) % n, bad);
        } else {
            a.set(pos % m, (pos / m) % k, bad);
        }

        let reject = ModgemmConfig { non_finite: NonFinitePolicy::Reject, ..small_cfg() };
        let mut c: Matrix<f64> = Matrix::zeros(m, n);
        let expected_operand = if poison_b { Operand::B } else { Operand::A };
        prop_assert_eq!(
            try_modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0,
                        c.view_mut(), &reject),
            Err(GemmError::NonFiniteInput { operand: expected_operand })
        );

        let fallback =
            ModgemmConfig { non_finite: NonFinitePolicy::FallbackConventional, ..small_cfg() };
        let c0: Matrix<f64> = random_matrix(m, n, seed + 2);
        let mut c = c0.clone();
        try_modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 2.0, c.view_mut(), &fallback)
            .unwrap();
        let mut expect = c0;
        naive_gemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 2.0, expect.view_mut());
        for i in 0..m {
            for j in 0..n {
                let (x, y) = (c.get(i, j), expect.get(i, j));
                prop_assert!(
                    x == y || (x.is_nan() && y.is_nan()),
                    "({}, {}): {} vs {}", i, j, x, y
                );
            }
        }
    }

    /// Freivalds verification accepts honest results for arbitrary
    /// shapes, scalars, and seeds (no spurious `VerificationFailed`).
    #[test]
    fn verification_accepts_honest_products(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        rounds in 1u32..10,
        vseed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let cfg = ModgemmConfig {
            verify: VerifyMode::Freivalds { rounds, seed: vseed },
            ..small_cfg()
        };
        let a: Matrix<f64> = random_matrix(m, k, seed);
        let b: Matrix<f64> = random_matrix(k, n, seed + 1);
        let c0: Matrix<f64> = random_matrix(m, n, seed + 2);
        let bt = b.transposed();
        let mut c = c0.clone();
        try_modgemm(1.5, Op::NoTrans, a.view(), Op::Trans, bt.view(), -0.5,
                    c.view_mut(), &cfg)
            .unwrap();
        let mut expect = c0;
        naive_gemm(1.5, Op::NoTrans, a.view(), Op::NoTrans, b.view(), -0.5, expect.view_mut());
        modgemm::mat::norms::assert_matrix_eq(c.view(), expect.view(), k);
    }

    /// Batched interface: length skew is typed, and generic `try_gemm`
    /// stays total over an integer instantiation too.
    #[test]
    fn batch_and_generic_paths_are_total(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..12,
        batch in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = small_cfg();
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 1);
        let mut cs: Vec<Vec<f64>> = (0..batch).map(|i| fill(m * n, seed + 3 + i as u64)).collect();
        let a_refs: Vec<&[f64]> = (0..batch).map(|_| a.as_slice()).collect();
        let b_refs: Vec<&[f64]> = (0..batch).map(|_| b.as_slice()).collect();
        let mut c_refs: Vec<&mut [f64]> = cs.iter_mut().map(|c| c.as_mut_slice()).collect();
        let err = try_gemm_batch(
            m, n, k, 1.0, 0.0, &a_refs[..batch - 1], &b_refs, &mut c_refs, &cfg,
        )
        .unwrap_err();
        prop_assert_eq!(err, GemmError::BatchLenMismatch { a: batch - 1, b: batch, c: batch });

        let ai: Vec<i64> = (0..m * k).map(|i| (i as i64 % 7) - 3).collect();
        let bi: Vec<i64> = (0..k * n).map(|i| (i as i64 % 5) - 2).collect();
        let mut ci = vec![0i64; m * n];
        prop_assert!(try_gemm(
            Op::NoTrans, Op::NoTrans, m, n, k, 1, &ai, m, &bi, k, 0, &mut ci, m, &cfg,
        )
        .is_ok());
    }
}
