//! Property tests for the work-stealing DAG executor: pooled execution
//! must be **bit-identical** to serial execution (same products, same
//! kernels, same associativity — only the evaluation order across
//! independent buffers differs), and worker panics must be contained as
//! typed [`GemmError::WorkerPanic`] values, never escaping `try_*`.
//!
//! Integer scalars make bit-identity checkable with plain equality: any
//! reassociation or scheduling bug that altered a single product or
//! merge shows up as an exact mismatch.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use modgemm::core::{
    parallel_slab_len, try_modgemm, try_strassen_mul_parallel_in_threads, workspace_len,
    ExecPolicy, GemmError, ModgemmConfig, NodeLayouts, Truncation,
};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::{KernelKind, Matrix, Op, Scalar};
use modgemm::morton::convert::to_morton;
use modgemm::morton::{MortonLayout, TileRange};
use proptest::prelude::*;

/// The thread counts the ISSUE pins: serial degradation (1), fewer
/// workers than one node's products (2, 3), exactly seven (7), and more
/// workers than top-level tasks (16).
const THREADS: [usize; 5] = [1, 2, 3, 7, 16];

fn fill_i64(len: usize, seed: u64) -> Vec<i64> {
    (0..len)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            ((x >> 48) as i64) % 17 - 8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw Morton executor: for every leaf kernel and pinned thread
    /// count, the pooled DAG run equals the serial run exactly on i64 —
    /// on a deliberately dirty slab, so any read-before-write of a
    /// temporary is caught too.
    #[test]
    fn pooled_dag_is_bitwise_serial_on_i64(
        tile in 2usize..6,
        depth in 1usize..4,
        par_depth in 1usize..4,
        kernel_ix in 0usize..KernelKind::ALL.len(),
        seed in 0u64..1000,
    ) {
        let l = MortonLayout::new(tile, tile, depth);
        let layouts = NodeLayouts::new(l, l, l);
        let kind = KernelKind::ALL[kernel_ix];
        // Auto resolves at plan time in the real pipeline; mirror that.
        let policy = ExecPolicy {
            kernel: kind.resolve(tile, tile, tile),
            ..ExecPolicy::default()
        };

        let a = fill_i64(l.len(), seed);
        let b = fill_i64(l.len(), seed + 1);

        let mut c_ser = vec![0i64; l.len()];
        let mut ws = vec![0i64; workspace_len(layouts, policy)];
        modgemm::core::strassen_mul(&a, &b, &mut c_ser, layouts, &mut ws, policy);

        for threads in THREADS {
            let mut c_pool = vec![i64::MIN; l.len()];
            let mut slab = vec![i64::MAX; parallel_slab_len(layouts, policy, par_depth)];
            try_strassen_mul_parallel_in_threads(
                &a, &b, &mut c_pool, layouts, policy, par_depth, threads, &mut slab,
            ).unwrap();
            prop_assert_eq!(
                &c_pool, &c_ser,
                "kernel {:?} tile {} depth {} par_depth {} threads {}",
                kind, tile, depth, par_depth, threads
            );
        }
    }

    /// Full pipeline on ragged shapes: a pooled configuration produces
    /// the exact serial product through conversion, compute, and unpack.
    #[test]
    fn pooled_pipeline_matches_serial_on_ragged_i64(
        m in 1usize..64,
        k in 1usize..64,
        n in 1usize..64,
        par_depth in 1usize..3,
        threads_ix in 0usize..THREADS.len(),
        seed in 0u64..1000,
    ) {
        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 7);
        let base = ModgemmConfig {
            truncation: Truncation::MinPadding(TileRange::new(4, 16)),
            ..ModgemmConfig::paper()
        };

        let mut c_ser: Matrix<i64> = Matrix::zeros(m, n);
        try_modgemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
            c_ser.view_mut(), &base).unwrap();

        let pooled = ModgemmConfig {
            parallel_depth: par_depth,
            threads: THREADS[threads_ix],
            ..base
        };
        let mut c_pool: Matrix<i64> = Matrix::zeros(m, n);
        try_modgemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
            c_pool.view_mut(), &pooled).unwrap();
        prop_assert_eq!(c_pool, c_ser);
    }
}

// ---------------------------------------------------------------------------
// Panic containment: a scalar whose multiply blows up on huge operands.
// ---------------------------------------------------------------------------

/// Any |value| at or above this trips [`Boom`]'s multiply. Sums of
/// same-sign huge values stay huge, so the Winograd pre-additions cannot
/// launder every huge operand away: some product task always panics.
const BOOM: i64 = 1 << 40;

/// An i64 whose `Mul` panics on huge operands — the injected fault for
/// worker-panic containment tests.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct Boom(i64);

impl fmt::Display for Boom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Boom {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Boom(self.0.wrapping_add(rhs.0))
    }
}
impl Sub for Boom {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Boom(self.0.wrapping_sub(rhs.0))
    }
}
impl Mul for Boom {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        assert!(self.0.abs() < BOOM && rhs.0.abs() < BOOM, "injected worker fault");
        Boom(self.0.wrapping_mul(rhs.0))
    }
}
impl Neg for Boom {
    type Output = Self;
    fn neg(self) -> Self {
        Boom(self.0.wrapping_neg())
    }
}
impl AddAssign for Boom {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Boom {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Boom {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Scalar for Boom {
    const ZERO: Self = Boom(0);
    const ONE: Self = Boom(1);
    fn abs_val(self) -> Self {
        Boom(self.0.abs())
    }
    fn from_f64(x: f64) -> Self {
        Boom(x as i64)
    }
    fn to_f64(self) -> f64 {
        self.0 as f64
    }
    fn epsilon_f64() -> f64 {
        0.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A panicking leaf multiply inside a pool worker must surface as
    /// `Err(WorkerPanic)` from `try_*` — no panic may cross the join, no
    /// worker may be lost (the pool stays usable for a healthy follow-up
    /// run at the same thread count).
    #[test]
    fn worker_panics_surface_as_typed_errors(
        tile in 2usize..5,
        depth in 1usize..3,
        threads_ix in 1usize..THREADS.len(), // >= 2: the pooled path
        seed in 0u64..1000,
    ) {
        let threads = THREADS[threads_ix];
        let l = MortonLayout::new(tile, tile, depth);
        let layouts = NodeLayouts::new(l, l, l);
        let policy = ExecPolicy::default();

        // All-huge A guarantees some product's operand is still huge
        // after the pre-additions (e.g. the A11·B11 chain).
        let a = vec![Boom(BOOM); l.len()];
        let b: Vec<Boom> = fill_i64(l.len(), seed).into_iter().map(Boom).collect();
        let mut c = vec![Boom(0); l.len()];
        let mut slab = vec![Boom(0); parallel_slab_len(layouts, policy, 1)];
        let r = try_strassen_mul_parallel_in_threads(
            &a, &b, &mut c, layouts, policy, 1, threads, &mut slab,
        );
        prop_assert!(
            matches!(r, Err(GemmError::WorkerPanic { .. })),
            "expected WorkerPanic, got {:?}", r
        );

        // The pool survives the contained panic: a healthy run on the
        // same workers still matches serial bitwise.
        let a2: Vec<Boom> = fill_i64(l.len(), seed + 1).into_iter().map(Boom).collect();
        let mut c_pool = vec![Boom(0); l.len()];
        let mut slab2 = vec![Boom(0); parallel_slab_len(layouts, policy, 1)];
        try_strassen_mul_parallel_in_threads(
            &a2, &b, &mut c_pool, layouts, policy, 1, threads, &mut slab2,
        ).unwrap();
        let mut c_ser = vec![Boom(0); l.len()];
        let mut ws = vec![Boom(0); workspace_len(layouts, policy)];
        modgemm::core::strassen_mul(&a2, &b, &mut c_ser, layouts, &mut ws, policy);
        prop_assert_eq!(c_pool, c_ser);
    }
}

/// Morton-buffer round trip sanity for the harness helpers (not a
/// property: one deterministic case so a broken `fill_i64` or layout
/// assumption fails loudly rather than making properties vacuous).
#[test]
fn harness_sanity() {
    let l = MortonLayout::new(4, 4, 2);
    let m: Matrix<i64> = random_matrix(16, 16, 3);
    let mut buf = vec![0i64; l.len()];
    to_morton(m.view(), Op::NoTrans, &l, &mut buf);
    assert_eq!(buf.len(), l.len());
    assert!(fill_i64(64, 1).iter().any(|&x| x != 0));
}

// ---------------------------------------------------------------------------
// Cooperative cancellation: interrupting the DAG at every task index.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Cancelling at every task-dequeue index: the interrupted run
    /// resolves as `Ok` (cancel arrived past the last check) or typed
    /// `Cancelled` — never a hang or panic — and the next execute on the
    /// same warm context is allocation-free and bit-identical to the
    /// reference. Cancellation must never leak or corrupt context state.
    #[test]
    fn cancel_at_every_task_index_keeps_context_warm_and_exact(
        m in 24usize..56,
        k in 24usize..56,
        n in 24usize..56,
        seed in 0u64..1000,
    ) {
        use modgemm::core::{CancelToken, CollectingSink, GemmContext, GemmPlan};

        let cfg = ModgemmConfig {
            truncation: Truncation::MinPadding(TileRange::new(4, 16)),
            parallel_depth: 1,
            threads: 4,
            ..ModgemmConfig::paper()
        };
        let plan = GemmPlan::<i64>::try_new(m, k, n, &cfg).unwrap();
        let tasks = plan.parallel_tasks() as u64;
        prop_assert!(tasks > 0, "these shapes must compile a parallel DAG");

        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 7);
        let mut ctx = GemmContext::new();
        let mut c_ref: Matrix<i64> = Matrix::zeros(m, n);
        plan.try_execute(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
            c_ref.view_mut(), &mut ctx).unwrap();

        for cut in 0..=tasks {
            // Trip the token on its `cut`-th successful check: cut 0 is
            // the pre-flight gate, later cuts land on task-dequeue
            // boundaries across the DAG.
            let token = CancelToken::cancelling_after(cut);
            let mut c: Matrix<i64> = Matrix::zeros(m, n);
            match plan.try_execute_cancellable_with_metrics(
                1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
                c.view_mut(), &mut ctx, &token, &mut modgemm::core::NoopSink,
            ) {
                Ok(_) => prop_assert_eq!(&c, &c_ref, "completed run must be exact (cut {})", cut),
                Err(GemmError::Cancelled) => {}
                other => prop_assert!(false, "unexpected outcome at cut {}: {:?}", cut, other),
            }

            // The warm follow-up execute must be allocation-free and
            // bit-identical, whatever the cancel left behind.
            let mut c2: Matrix<i64> = Matrix::zeros(m, n);
            let mut sink = CollectingSink::new();
            plan.try_execute_with_metrics(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
                c2.view_mut(), &mut ctx, &mut sink).unwrap();
            prop_assert_eq!(&c2, &c_ref, "follow-up after cut {} must be exact", cut);
            prop_assert_eq!(sink.metrics.temp_alloc_bytes, 0,
                "follow-up after cut {} must be allocation-free", cut);
        }
    }
}
