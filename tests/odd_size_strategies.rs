//! The four odd-size strategies of §3.2/§5.1 — static padding with
//! dynamic truncation (MODGEMM), dynamic peeling (DGEFMM), dynamic
//! overlap (DGEMMW), and static padding with fixed unfolding (Bailey) —
//! must all realize the same mathematical product on the awkward sizes
//! they were invented for.

use modgemm::baselines::{bailey_gemm, dgefmm, dgemmw, BaileyConfig, DgefmmConfig, DgemmwConfig};
use modgemm::core::{modgemm, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_product;
use modgemm::mat::{Matrix, Op};

/// Exact integer check of all four strategies at one size.
fn check_all_exact(m: usize, k: usize, n: usize, seed: u64) {
    let a: Matrix<i64> = random_matrix(m, k, seed);
    let b: Matrix<i64> = random_matrix(k, n, seed + 1);
    let expect = naive_product(&a, &b);

    let mut c: Matrix<i64> = Matrix::zeros(m, n);
    modgemm(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c.view_mut(),
        &ModgemmConfig::paper(),
    );
    assert_eq!(c, expect, "modgemm {m}x{k}x{n}");

    let mut c: Matrix<i64> = Matrix::zeros(m, n);
    dgefmm(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c.view_mut(),
        &DgefmmConfig { truncation: 8, ..Default::default() },
    );
    assert_eq!(c, expect, "dgefmm {m}x{k}x{n}");

    let mut c: Matrix<i64> = Matrix::zeros(m, n);
    dgemmw(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c.view_mut(),
        &DgemmwConfig { truncation: 8, ..Default::default() },
    );
    assert_eq!(c, expect, "dgemmw {m}x{k}x{n}");

    let mut c: Matrix<i64> = Matrix::zeros(m, n);
    bailey_gemm(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c.view_mut(),
        &BaileyConfig { levels: 2, ..Default::default() },
    );
    assert_eq!(c, expect, "bailey {m}x{k}x{n}");
}

#[test]
fn primes_and_prime_neighbourhoods() {
    // Primes are the worst case for every divide-and-conquer strategy:
    // every recursion level sees an odd dimension.
    for p in [61usize, 67, 97, 101, 127] {
        check_all_exact(p, p, p, p as u64);
    }
}

#[test]
fn power_of_two_neighbourhoods() {
    for n in [63usize, 64, 65] {
        check_all_exact(n, n, n, 500 + n as u64);
    }
}

#[test]
fn mixed_parity_rectangles() {
    check_all_exact(64, 65, 66, 1);
    check_all_exact(65, 64, 63, 2);
    check_all_exact(33, 77, 55, 3);
    check_all_exact(100, 51, 74, 4);
}

#[test]
fn mersenne_like_sizes_recurse_odd_at_every_level() {
    // 2^k − 1 stays odd after every ceil/floor halving.
    check_all_exact(63, 63, 63, 10);
    check_all_exact(127, 127, 127, 11);
}

#[test]
fn the_papers_pivotal_513() {
    // Small-scale analogue checks run in the suite; the real 513 runs
    // here once in f64 against the conventional result.
    let n = 513;
    let a: Matrix<f64> = random_matrix(n, n, 20);
    let b: Matrix<f64> = random_matrix(n, n, 21);
    let expect = {
        let mut c: Matrix<f64> = Matrix::zeros(n, n);
        modgemm::baselines::conventional_gemm(
            1.0,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0.0,
            c.view_mut(),
        );
        c
    };
    let mut c: Matrix<f64> = Matrix::zeros(n, n);
    modgemm(
        1.0,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0.0,
        c.view_mut(),
        &ModgemmConfig::paper(),
    );
    modgemm::mat::norms::assert_matrix_eq(c.view(), expect.view(), n);
    // Freivalds agrees too (O(n²)).
    assert!(modgemm::core::verify::verify_product(a.view(), b.view(), c.view(), 8, 22));
}

#[test]
fn raw_slice_blas_interface_across_strategies() {
    // The dgemm-shaped entry point drives the same engine.
    let (m, n, k) = (37, 41, 29);
    let a: Matrix<f64> = random_matrix(m, k, 30);
    let b: Matrix<f64> = random_matrix(k, n, 31);
    let mut c: Matrix<f64> = Matrix::zeros(m, n);
    modgemm::core::blas::dgemm(
        Op::NoTrans,
        Op::NoTrans,
        m,
        n,
        k,
        1.0,
        a.as_slice(),
        m,
        b.as_slice(),
        k,
        0.0,
        c.as_mut_slice(),
        m,
        &ModgemmConfig::paper(),
    );
    let expect = naive_product(&a, &b);
    modgemm::mat::norms::assert_matrix_eq(c.view(), expect.view(), k);
}
