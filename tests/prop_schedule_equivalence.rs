//! Property tests for the Boyer et al. schedule tiers (standard /
//! low-mem / in-place): the tier changes *where temporaries live*, never
//! *what is computed*. On integer scalars every tier must be
//! **bit-identical** to the standard schedule — the low-mem
//! linearization reorders nothing arithmetic, and the in-place
//! schedule's operand-restoring add chains are exact on `i64` (adds and
//! subtracts cancel exactly; only floats see rounding perturbation).
//!
//! Covered here, per the PR checklist:
//! * every tier × every leaf kernel × fuse depths × thread counts
//!   {1, 2, 7} × ragged shapes, bit-identical to standard on `i64`;
//! * warm-context re-execution stays allocation-free on every tier, and
//!   the measured peak workspace equals the planned arena exactly (the
//!   closed-form `counts` model);
//! * cooperative cancellation at every task-dequeue index of a pooled
//!   in-place plan: typed outcome, warm exact allocation-free follow-up.

use modgemm::core::plan::GemmPlan;
use modgemm::core::{
    CancelToken, CollectingSink, GemmContext, GemmError, ModgemmConfig, NoopSink, Schedule,
    SchedulePolicy, Truncation,
};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::{KernelKind, Matrix, Op};
use modgemm::morton::TileRange;
use proptest::prelude::*;

/// Serial, fewer workers than one node's seven products, and exactly
/// seven — the counts the checklist pins.
const THREADS: [usize; 3] = [1, 2, 7];

/// Runs a planned execution of `cfg` and returns the product plus the
/// metrics of a second (warm) execution on the same context.
fn run_planned(
    cfg: &ModgemmConfig,
    m: usize,
    k: usize,
    n: usize,
    a: &Matrix<i64>,
    b: &Matrix<i64>,
) -> Result<(Matrix<i64>, GemmPlan<i64>, CollectingSink), GemmError> {
    let plan = GemmPlan::<i64>::try_new(m, k, n, cfg)?;
    let mut ctx = GemmContext::new();
    let mut c: Matrix<i64> = Matrix::zeros(m, n);
    plan.try_execute(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0, c.view_mut(), &mut ctx)?;
    // The warm re-execution: same plan, same context, fresh output.
    let mut c2: Matrix<i64> = Matrix::zeros(m, n);
    let mut sink = CollectingSink::new();
    plan.try_execute_with_metrics(
        1,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0,
        c2.view_mut(),
        &mut ctx,
        &mut sink,
    )?;
    assert_eq!(c, c2, "warm re-execution must be bit-identical to the cold one");
    Ok((c, plan, sink))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every schedule tier, pinned through the public config, is
    /// bit-identical to the standard schedule on `i64` across ragged
    /// shapes, leaf kernels, fuse depths, and thread counts — and every
    /// warm re-execution is allocation-free with a measured peak
    /// workspace exactly equal to the planned arena.
    #[test]
    fn every_tier_is_bitwise_standard_on_i64(
        m in 1usize..72,
        k in 1usize..72,
        n in 1usize..72,
        kernel_ix in 0usize..KernelKind::ALL.len(),
        fuse in 0usize..3,
        threads_ix in 0usize..THREADS.len(),
        par_depth in 0usize..3,
        seed in 0u64..1000,
    ) {
        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 7);
        let base = ModgemmConfig {
            truncation: Truncation::MinPadding(TileRange::new(4, 16)),
            leaf_kernel: KernelKind::ALL[kernel_ix],
            fuse_depth: modgemm::core::FuseDepth::Fixed(fuse.min(modgemm::core::fuse::MAX_FUSE)),
            parallel_depth: par_depth,
            threads: THREADS[threads_ix],
            ..ModgemmConfig::paper()
        };

        let (c_std, _, _) = run_planned(&base, m, k, n, &a, &b).unwrap();

        for sched in Schedule::ALL {
            let cfg = ModgemmConfig { schedule: SchedulePolicy::Fixed(sched), ..base };
            let (c, plan, sink) = run_planned(&cfg, m, k, n, &a, &b).unwrap();
            prop_assert_eq!(
                &c, &c_std,
                "tier {:?} kernel {:?} fuse {} par_depth {} threads {} must be bitwise standard",
                sched, base.leaf_kernel, fuse, par_depth, THREADS[threads_ix]
            );
            prop_assert_eq!(
                sink.metrics.temp_alloc_bytes, 0,
                "tier {:?}: warm re-execution must be allocation-free", sched
            );
            if plan.strassen_levels() > plan.fused_levels() {
                // Staged levels exist, so the tier was actually run (a
                // fully fused or conventional plan normalizes away).
                prop_assert_eq!(
                    sink.metrics.schedule_selected, Some(plan.schedule()),
                    "metrics must report the executed tier"
                );
            }
            if plan.arena_len() > 0 {
                // The measured peak equals the closed-form arena model
                // exactly — for the serial interpreter the peak is the
                // summed per-level slots, for the pooled DAG the slab.
                prop_assert_eq!(
                    sink.metrics.workspace_used_elems, plan.arena_len(),
                    "tier {:?}: measured peak workspace must match the planned arena", sched
                );
            }
        }
    }

    /// The one-shot shared-reference pipeline cannot run the
    /// input-overwriting tier, but standard and low-mem flow through it;
    /// both must match the planned standard product exactly.
    #[test]
    fn shared_reference_pipeline_runs_the_borrowable_tiers(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 3);
        let base = ModgemmConfig {
            truncation: Truncation::MinPadding(TileRange::new(4, 16)),
            ..ModgemmConfig::paper()
        };
        let mut c_std: Matrix<i64> = Matrix::zeros(m, n);
        modgemm::core::try_modgemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
            c_std.view_mut(), &base).unwrap();
        for sched in [Schedule::Standard, Schedule::LowMem] {
            let cfg = ModgemmConfig { schedule: SchedulePolicy::Fixed(sched), ..base };
            let mut c: Matrix<i64> = Matrix::zeros(m, n);
            modgemm::core::try_modgemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
                c.view_mut(), &cfg).unwrap();
            prop_assert_eq!(&c, &c_std, "one-shot tier {:?} must be bitwise standard", sched);
        }
        // A pinned in-place tier is *clamped* (not refused) on the
        // shared-reference path: it still computes the exact product.
        let cfg = ModgemmConfig { schedule: SchedulePolicy::Fixed(Schedule::InPlace), ..base };
        let mut c: Matrix<i64> = Matrix::zeros(m, n);
        modgemm::core::try_modgemm(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
            c.view_mut(), &cfg).unwrap();
        prop_assert_eq!(&c, &c_std, "clamped in-place pin must still be exact");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Cancelling a pooled in-place plan at every task-dequeue index:
    /// the in-place tier scribbles on its packed operand quadrants
    /// mid-flight, so an interrupted run must never poison the context —
    /// the warm follow-up must be allocation-free and bit-identical.
    #[test]
    fn cancel_at_every_task_index_with_the_in_place_tier(
        m in 24usize..56,
        k in 24usize..56,
        n in 24usize..56,
        seed in 0u64..1000,
    ) {
        let cfg = ModgemmConfig {
            truncation: Truncation::MinPadding(TileRange::new(4, 16)),
            parallel_depth: 1,
            threads: 4,
            schedule: SchedulePolicy::Fixed(Schedule::InPlace),
            ..ModgemmConfig::paper()
        };
        let plan = GemmPlan::<i64>::try_new(m, k, n, &cfg).unwrap();
        let tasks = plan.parallel_tasks() as u64;
        prop_assert!(tasks > 0, "these shapes must compile a parallel DAG");
        prop_assert_eq!(plan.schedule(), Schedule::InPlace, "the pin must survive planning");

        let a: Matrix<i64> = random_matrix(m, k, seed);
        let b: Matrix<i64> = random_matrix(k, n, seed + 7);
        let mut ctx = GemmContext::new();
        let mut c_ref: Matrix<i64> = Matrix::zeros(m, n);
        plan.try_execute(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
            c_ref.view_mut(), &mut ctx).unwrap();

        for cut in 0..=tasks {
            let token = CancelToken::cancelling_after(cut);
            let mut c: Matrix<i64> = Matrix::zeros(m, n);
            match plan.try_execute_cancellable_with_metrics(
                1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
                c.view_mut(), &mut ctx, &token, &mut NoopSink,
            ) {
                Ok(_) => prop_assert_eq!(&c, &c_ref, "completed run must be exact (cut {})", cut),
                Err(GemmError::Cancelled) => {}
                other => prop_assert!(false, "unexpected outcome at cut {}: {:?}", cut, other),
            }

            let mut c2: Matrix<i64> = Matrix::zeros(m, n);
            let mut sink = CollectingSink::new();
            plan.try_execute_with_metrics(1, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0,
                c2.view_mut(), &mut ctx, &mut sink).unwrap();
            prop_assert_eq!(&c2, &c_ref, "follow-up after cut {} must be exact", cut);
            prop_assert_eq!(sink.metrics.temp_alloc_bytes, 0,
                "follow-up after cut {} must be allocation-free", cut);
        }
    }
}

/// One deterministic anchor so a broken harness assumption fails loudly:
/// the three tiers pin distinct arena sizes for the same plan, ordered
/// standard > low-mem > in-place.
#[test]
fn tiers_order_the_planned_arena() {
    let mk = |sched| {
        let cfg = ModgemmConfig {
            truncation: Truncation::Fixed(16),
            schedule: SchedulePolicy::Fixed(sched),
            ..ModgemmConfig::paper()
        };
        GemmPlan::<i64>::try_new(256, 256, 256, &cfg).unwrap().arena_len()
    };
    let (std_len, lm, ip) = (mk(Schedule::Standard), mk(Schedule::LowMem), mk(Schedule::InPlace));
    assert!(std_len > lm && lm > ip, "arena must shrink per tier: {std_len} > {lm} > {ip}");
}
