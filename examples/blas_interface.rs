//! The full Level-3 BLAS `dgemm` semantics: `C ← α·op(A)·op(B) + β·C`
//! with transposes, scalars, and strided submatrix views — plus the same
//! call served by all three Strassen implementations and the conventional
//! baseline.
//!
//! ```sh
//! cargo run --release --example blas_interface
//! ```

use modgemm::baselines::{conventional_gemm, dgefmm, dgemmw, DgefmmConfig, DgemmwConfig};
use modgemm::core::{modgemm, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_gemm;
use modgemm::mat::norms::max_abs_diff;
use modgemm::mat::{Matrix, Op};

fn main() {
    // C (200x150) ← 2.5 · Aᵀ(200x300) · B(300x150) − 0.5 · C
    let (m, k, n) = (200, 300, 150);
    let a: Matrix<f64> = random_matrix(k, m, 1); // stored kxm; op(A) = Aᵀ
    let b: Matrix<f64> = random_matrix(k, n, 2);
    let c0: Matrix<f64> = random_matrix(m, n, 3);
    let (alpha, beta) = (2.5, -0.5);

    let mut oracle = c0.clone();
    naive_gemm(alpha, Op::Trans, a.view(), Op::NoTrans, b.view(), beta, oracle.view_mut());

    let cfg = ModgemmConfig::paper();
    let fmm = DgefmmConfig::default();
    let mmw = DgemmwConfig::default();

    let runs: Vec<(&str, Matrix<f64>)> = vec![
        ("modgemm", {
            let mut c = c0.clone();
            modgemm(alpha, Op::Trans, a.view(), Op::NoTrans, b.view(), beta, c.view_mut(), &cfg);
            c
        }),
        ("dgefmm", {
            let mut c = c0.clone();
            dgefmm(alpha, Op::Trans, a.view(), Op::NoTrans, b.view(), beta, c.view_mut(), &fmm);
            c
        }),
        ("dgemmw", {
            let mut c = c0.clone();
            dgemmw(alpha, Op::Trans, a.view(), Op::NoTrans, b.view(), beta, c.view_mut(), &mmw);
            c
        }),
        ("conventional", {
            let mut c = c0.clone();
            conventional_gemm(
                alpha,
                Op::Trans,
                a.view(),
                Op::NoTrans,
                b.view(),
                beta,
                c.view_mut(),
            );
            c
        }),
    ];

    println!("C <- {alpha}*A^T*B + {beta}*C   ({m}x{n}, inner {k})");
    for (name, c) in &runs {
        let err = max_abs_diff(c.view(), oracle.view());
        println!("  {name:>12}: max |error| vs oracle = {err:.2e}");
        assert!(err < 1e-9);
    }

    // Views: multiply a window of a larger matrix without copying.
    let big: Matrix<f64> = random_matrix(400, 400, 4);
    let a_win = big.view().submatrix(10, 10, 100, 120); // ld = 400
    let b_win = big.view().submatrix(150, 30, 120, 90);
    let mut c_small: Matrix<f64> = Matrix::zeros(100, 90);
    modgemm(1.0, Op::NoTrans, a_win, Op::NoTrans, b_win, 0.0, c_small.view_mut(), &cfg);
    let mut oracle2: Matrix<f64> = Matrix::zeros(100, 90);
    naive_gemm(1.0, Op::NoTrans, a_win, Op::NoTrans, b_win, 0.0, oracle2.view_mut());
    let err = max_abs_diff(c_small.view(), oracle2.view());
    println!("  strided window multiply: max |error| = {err:.2e}");
    assert!(err < 1e-9);
    println!("OK");
}
