//! Highly rectangular operands (§3.5 / Figure 4): how MODGEMM classifies
//! shapes and splits the product into well-behaved pieces.
//!
//! ```sh
//! cargo run --release --example rectangular
//! ```

use modgemm::core::{classify, modgemm, ModgemmConfig, Shape};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_gemm;
use modgemm::mat::norms::max_abs_diff;
use modgemm::mat::{Matrix, Op};
use modgemm::morton::tiling::TileRange;

fn shape_name(s: Shape) -> &'static str {
    match s {
        Shape::Wide => "wide",
        Shape::Lean => "lean",
        Shape::WellBehaved => "well-behaved",
    }
}

fn main() {
    let cfg = ModgemmConfig::paper();
    let range = TileRange::PAPER;

    // The paper's example pair plus more extreme shapes.
    let cases: [(usize, usize, usize); 4] =
        [(1024, 256, 512), (2048, 200, 2048), (100, 3000, 100), (4000, 64, 50)];

    for (m, k, n) in cases {
        let a_shape = classify(m, k, range);
        let b_shape = classify(k, n, range);
        let plan = cfg.plan(m, k, n);
        println!(
            "A {m}x{k} ({}), B {k}x{n} ({}): {}",
            shape_name(a_shape),
            shape_name(b_shape),
            match &plan {
                Some(p) => format!(
                    "jointly feasible at depth {} (tiles {} / {} / {})",
                    p.depth, p.m.tile, p.k.tile, p.n.tile
                ),
                None => "no shared recursion depth → split into submatrix products".to_string(),
            }
        );

        let a: Matrix<f64> = random_matrix(m, k, 1);
        let b: Matrix<f64> = random_matrix(k, n, 2);
        let mut c: Matrix<f64> = Matrix::zeros(m, n);
        let t0 = std::time::Instant::now();
        modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), &cfg);
        let dt = t0.elapsed();

        let mut oracle: Matrix<f64> = Matrix::zeros(m, n);
        naive_gemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, oracle.view_mut());
        let err = max_abs_diff(c.view(), oracle.view());
        println!("    multiplied in {:.1} ms, max |error| = {err:.2e}\n", dt.as_secs_f64() * 1e3);
        assert!(err < 1e-8);
    }
    println!("OK");
}
