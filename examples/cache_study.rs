//! Run the cache simulator on a small multiply and explain the §4.2
//! conflict-miss phenomenon (quadrants 16 KB apart fighting for the same
//! direct-mapped sets).
//!
//! ```sh
//! cargo run --release --example cache_study
//! ```

use modgemm::cachesim::{traced_dgefmm, traced_modgemm, Cache, CacheConfig};
use modgemm::core::ModgemmConfig;
use modgemm::mat::gen::random_matrix;
use modgemm::mat::Matrix;

fn main() {
    let cache = CacheConfig::PAPER_FIG9;
    println!(
        "Cache: {} KB, {}-byte blocks, {}-way ({} sets) — the paper's Figure 9 geometry\n",
        cache.size / 1024,
        cache.block,
        cache.assoc,
        cache.sets()
    );

    // The §4.2 conflict: two 8 KB quadrants whose bases are 16 KB apart
    // map onto identical sets of a 16 KB direct-mapped cache.
    let mut c = Cache::new(cache);
    let quadrant_bytes = 8 * 1024u64;
    for pass in 0..2 {
        for i in (0..quadrant_bytes).step_by(8) {
            c.access(i); // NW quadrant
            c.access(2 * quadrant_bytes + i); // SW quadrant, 16 KB away
        }
        println!(
            "pass {pass}: alternating NW/SW quadrant sweep → miss ratio {:.1}% (conflict thrashing)",
            100.0 * c.stats().miss_ratio()
        );
    }
    let mut c2 = Cache::new(cache);
    for pass in 0..2 {
        for i in (0..quadrant_bytes).step_by(8) {
            c2.access(i);
            c2.access(quadrant_bytes + i); // NE quadrant, 8 KB away: no conflict
        }
        println!(
            "pass {pass}: alternating NW/NE quadrant sweep → miss ratio {:.1}% (conflict-free)",
            100.0 * c2.stats().miss_ratio()
        );
    }

    // Whole-algorithm traces at a small size.
    let n = 96;
    let a: Matrix<f64> = random_matrix(n, n, 1);
    let b: Matrix<f64> = random_matrix(n, n, 2);
    let cfg = ModgemmConfig::paper();

    let rm = traced_modgemm(&a, &b, &cfg, cache, true);
    let rf = traced_dgefmm(&a, &b, 64, cache);
    println!("\nTraced {n}x{n} multiply through the Figure 9 cache:");
    println!(
        "  MODGEMM: {:>9} accesses, miss ratio {:.2}%, {} flops",
        rm.stats.accesses,
        100.0 * rm.stats.miss_ratio(),
        rm.flops
    );
    println!(
        "  DGEFMM : {:>9} accesses, miss ratio {:.2}%, {} flops",
        rf.stats.accesses,
        100.0 * rf.stats.miss_ratio(),
        rf.flops
    );
    let diff = modgemm::mat::norms::max_abs_diff(rm.result.view(), rf.result.view());
    println!("  results agree to {diff:.2e}");
}
