//! Visualize the Morton layout: the Figure 1 tile-numbering grid, the
//! quadrant structure, and the dynamic tile-size selection of Figure 2.
//!
//! ```sh
//! cargo run --release --example layout_explorer           # defaults
//! cargo run --release --example layout_explorer 513       # explain one n
//! ```

use modgemm::morton::layout::tile_number_grid;
use modgemm::morton::tiling::{choose_dim_tiling, feasible_depths, fixed_tile_tiling, TileRange};
use modgemm::morton::MortonLayout;

fn main() {
    // --- Figure 1: the 8x8 tile grid ------------------------------------
    let layout = MortonLayout::new(4, 4, 3);
    println!("Figure 1 — Morton tile numbering (8x8 tiles, NW,NE,SW,SE order):");
    for row in tile_number_grid(&layout) {
        let cells: Vec<String> = row.iter().map(|z| format!("{z:>3}")).collect();
        println!("  {}", cells.join(" "));
    }

    // --- Quadrant contiguity --------------------------------------------
    println!("\nQuadrant buffer regions (each contiguous — the property MODGEMM exploits):");
    let q = layout.quadrant_len();
    for (name, off) in [("NW/X11", 0), ("NE/X12", q), ("SW/X21", 2 * q), ("SE/X22", 3 * q)] {
        println!("  {name}: offsets {off}..{}", off + q);
    }

    // --- Tile selection for a given n ------------------------------------
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(513);
    let range = TileRange::PAPER;
    println!(
        "\nDynamic truncation-point selection for n = {n} (range [{}, {}]):",
        range.min, range.max
    );
    for d in feasible_depths(n, range) {
        let t = modgemm::morton::tiling::tile_at_depth(n, d, range);
        let padded = t << d;
        println!(
            "  depth {d}: tile {t:>3} → padded {padded:>5} (padding {:>4}){}",
            padded - n,
            if choose_dim_tiling(n, range).depth == d { "   ← chosen" } else { "" }
        );
    }
    let fixed = fixed_tile_tiling(n, 32);
    println!(
        "  fixed tile 32 would need depth {} → padded {} (padding {})",
        fixed.depth,
        fixed.padded,
        fixed.padded - n
    );

    let chosen = choose_dim_tiling(n, range);
    let l = MortonLayout::new(chosen.tile, chosen.tile, chosen.depth);
    println!(
        "\nChosen layout: {} tiles of {}x{} = {} elements ({} bytes per f64 tile — L1-resident)",
        l.grid() * l.grid(),
        l.tile_rows,
        l.tile_cols,
        l.len(),
        l.tile_len() * 8
    );
}
