//! Serial vs parallel MODGEMM (the plan's task DAG on the persistent
//! work-stealing pool) — the natural extension of the paper's future
//! work. `ModgemmConfig::threads` (or `MODGEMM_THREADS`) picks the
//! worker count; 0 means auto.
//!
//! ```sh
//! cargo run --release --example parallel_speedup
//! ```

use modgemm::core::{modgemm, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::{Matrix, Op};
use std::time::Instant;

fn time_once(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &mut Matrix<f64>,
    cfg: &ModgemmConfig,
) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), cfg);
        std::hint::black_box(c.as_slice());
        best = best.min(t0.elapsed());
    }
    best
}

fn main() {
    let n = 1024;
    let a: Matrix<f64> = random_matrix(n, n, 1);
    let b: Matrix<f64> = random_matrix(n, n, 2);
    let mut c: Matrix<f64> = Matrix::zeros(n, n);

    println!(
        "hardware threads: {}",
        std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1)
    );

    let serial_cfg = ModgemmConfig::paper();
    let t_serial = time_once(&a, &b, &mut c, &serial_cfg);
    let serial_result = c.clone();
    println!("serial          : {:>8.1} ms", t_serial.as_secs_f64() * 1e3);

    for depth in [1usize, 2] {
        let cfg = ModgemmConfig { parallel_depth: depth, parallel_convert: true, ..serial_cfg };
        let t = time_once(&a, &b, &mut c, &cfg);
        // Same products, same kernels ⇒ bitwise identical to serial.
        assert_eq!(c, serial_result, "parallel result must be bitwise identical");
        println!(
            "parallel depth {depth}: {:>8.1} ms  (speedup {:.2}x, bitwise identical)",
            t.as_secs_f64() * 1e3,
            t_serial.as_secs_f64() / t.as_secs_f64()
        );
    }

    // Pin the pool to explicit worker counts (0 above = auto).
    for threads in [1usize, 2, 4] {
        let cfg =
            ModgemmConfig { parallel_depth: 2, parallel_convert: true, threads, ..serial_cfg };
        let t = time_once(&a, &b, &mut c, &cfg);
        assert_eq!(c, serial_result, "pooled result must be bitwise identical");
        println!(
            "threads {threads} depth 2: {:>8.1} ms  (speedup {:.2}x, bitwise identical)",
            t.as_secs_f64() * 1e3,
            t_serial.as_secs_f64() / t.as_secs_f64()
        );
    }
}
