//! Quickstart: multiply two matrices with MODGEMM and check the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use modgemm::core::{modgemm, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_product;
use modgemm::mat::norms::max_abs_diff;
use modgemm::mat::{Matrix, Op};

fn main() {
    // An awkward odd size — the kind Strassen codes historically hated.
    let n = 513;
    let a: Matrix<f64> = random_matrix(n, n, 1);
    let b: Matrix<f64> = random_matrix(n, n, 2);
    let mut c: Matrix<f64> = Matrix::zeros(n, n);

    // C ← 1·A·B + 0·C with the paper's default configuration:
    // Morton-order internal layout, tile size chosen from [16, 64] to
    // minimize padding (here: tile 33, depth 4, padded 528).
    let cfg = ModgemmConfig::paper();
    let plan = cfg.plan(n, n, n).expect("square problems always plan");
    println!(
        "n = {n}: tile {}x{} at depth {} → padded {} (padding {})",
        plan.m.tile,
        plan.k.tile,
        plan.depth,
        plan.m.padded,
        plan.m.padded - n
    );

    let t0 = std::time::Instant::now();
    modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), &cfg);
    let dt = t0.elapsed();

    let expect = naive_product(&a, &b);
    let err = max_abs_diff(c.view(), expect.view());
    println!(
        "multiplied {n}x{n} in {:.1} ms, max |error| vs naive = {err:.2e}",
        dt.as_secs_f64() * 1e3
    );
    assert!(err < 1e-9, "unexpected numerical error");
    println!("OK");
}
