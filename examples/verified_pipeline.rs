//! A realistic pipeline: load matrices from disk, multiply with MODGEMM
//! reusing a context, verify the result probabilistically (Freivalds,
//! O(n²)), and save the product — the workflow a downstream user of a
//! fast-but-reassociating multiply actually wants.
//!
//! ```sh
//! cargo run --release --example verified_pipeline
//! ```

use modgemm::core::verify::verify_product;
use modgemm::core::{modgemm_with_ctx, GemmContext, ModgemmConfig};
use modgemm::mat::gen::random_matrix;
use modgemm::mat::io::{load_matrix, save_matrix};
use modgemm::mat::{Matrix, Op};

fn main() {
    let dir = std::env::temp_dir().join("modgemm-pipeline");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // Stage 1: produce inputs on disk (stand-in for an external producer).
    let n = 300;
    let a: Matrix<f64> = random_matrix(n, n, 1);
    let b: Matrix<f64> = random_matrix(n, n, 2);
    save_matrix(&a, dir.join("a.txt")).expect("save A");
    save_matrix(&b, dir.join("b.txt")).expect("save B");
    println!("wrote {n}x{n} inputs to {}", dir.display());

    // Stage 2: load, multiply (context reused across repeated calls),
    // verify.
    let a: Matrix<f64> = load_matrix(dir.join("a.txt")).expect("load A");
    let b: Matrix<f64> = load_matrix(dir.join("b.txt")).expect("load B");
    let cfg = ModgemmConfig::paper();
    let mut ctx = GemmContext::new();
    ctx.reserve_for(n, n, n, &cfg);

    let mut c: Matrix<f64> = Matrix::zeros(n, n);
    let t0 = std::time::Instant::now();
    modgemm_with_ctx(
        1.0,
        Op::NoTrans,
        a.view(),
        Op::NoTrans,
        b.view(),
        0.0,
        c.view_mut(),
        &cfg,
        &mut ctx,
    );
    let t_mul = t0.elapsed();

    let t1 = std::time::Instant::now();
    let ok = verify_product(a.view(), b.view(), c.view(), 8, 42);
    let t_verify = t1.elapsed();
    assert!(ok, "Freivalds verification failed");
    println!(
        "multiplied in {:.2} ms, verified in {:.2} ms (O(n^2), {:.1}x cheaper)",
        t_mul.as_secs_f64() * 1e3,
        t_verify.as_secs_f64() * 1e3,
        t_mul.as_secs_f64() / t_verify.as_secs_f64()
    );

    // Stage 3: corruptions are caught.
    let mut corrupted = c.clone();
    corrupted.set(n / 2, n / 3, corrupted.get(n / 2, n / 3) * 1.001);
    assert!(
        !verify_product(a.view(), b.view(), corrupted.view(), 8, 42),
        "corruption must be detected"
    );
    println!("single-entry corruption detected by the verifier");

    // Stage 4: persist the verified product.
    save_matrix(&c, dir.join("c.txt")).expect("save C");
    let back: Matrix<f64> = load_matrix(dir.join("c.txt")).expect("reload C");
    assert_eq!(back, c, "text round-trip must be exact");
    println!("product saved and round-tripped exactly: {}", dir.join("c.txt").display());

    for f in ["a.txt", "b.txt", "c.txt"] {
        std::fs::remove_file(dir.join(f)).ok();
    }
    println!("OK");
}
