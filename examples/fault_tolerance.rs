//! The fault-tolerant pipeline end to end: typed argument errors,
//! memory-budget degradation, non-finite input policies, and the
//! Freivalds verified-retry mode — everything a caller who cannot
//! afford a process abort needs.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use modgemm::mat::gen::random_matrix;
use modgemm::mat::naive::naive_gemm;
use modgemm::prelude::*;

fn main() {
    // ── 1. Typed errors instead of aborts ────────────────────────────
    println!("== typed argument errors ==");
    let cfg = ModgemmConfig::paper();
    let (a, b) = (vec![0.0f64; 12], vec![0.0f64; 8]);
    let mut c = vec![0.0f64; 5]; // needs 3×2 = 6 at ldc = 3
    for (what, err) in [
        (
            "short C slice",
            try_dgemm(Op::NoTrans, Op::NoTrans, 3, 2, 4, 1.0, &a, 3, &b, 4, 0.0, &mut c, 3, &cfg)
                .unwrap_err(),
        ),
        (
            "bad lda",
            try_dgemm(Op::NoTrans, Op::NoTrans, 3, 2, 4, 1.0, &a, 2, &b, 4, 0.0, &mut c, 3, &cfg)
                .unwrap_err(),
        ),
    ] {
        println!("  {what:<14} -> {err}");
    }
    let am: Matrix<f64> = Matrix::zeros(3, 4);
    let bm: Matrix<f64> = Matrix::zeros(5, 2);
    let mut cm: Matrix<f64> = Matrix::zeros(3, 2);
    let err =
        try_modgemm(1.0, Op::NoTrans, am.view(), Op::NoTrans, bm.view(), 0.0, cm.view_mut(), &cfg)
            .unwrap_err();
    println!("  {:<14} -> {err}", "k mismatch");

    // ── 2. Memory-budget degradation ─────────────────────────────────
    println!("\n== memory-budget degradation (n = 1000) ==");
    let n = 1000;
    let a: Matrix<f64> = random_matrix(n, n, 1);
    let b: Matrix<f64> = random_matrix(n, n, 2);
    let mut reference: Matrix<f64> = Matrix::zeros(n, n);
    naive_gemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, reference.view_mut());
    for budget in [
        MemoryBudget::Unlimited,
        MemoryBudget::MaxWorkspaceBytes(8 << 20),
        MemoryBudget::MaxWorkspaceBytes(1 << 20),
        MemoryBudget::MaxWorkspaceBytes(0),
    ] {
        let cfg = ModgemmConfig { memory_budget: budget, ..ModgemmConfig::paper() };
        let mut ctx = GemmContext::new();
        ctx.try_reserve_for(n, n, n, &cfg).expect("reserve under budget");
        let mut c: Matrix<f64> = Matrix::zeros(n, n);
        let t0 = std::time::Instant::now();
        try_modgemm_with_ctx(
            1.0,
            Op::NoTrans,
            a.view(),
            Op::NoTrans,
            b.view(),
            0.0,
            c.view_mut(),
            &cfg,
            &mut ctx,
        )
        .expect("budgeted multiply");
        let dt = t0.elapsed();
        let max_err = c
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        println!(
            "  {budget:?}: strassen workspace {:>9} B (+ {:>9} B operand buffers), {dt:>9.1?}, max |err| {max_err:.2e}",
            ctx.workspace_footprint() * std::mem::size_of::<f64>(),
            (ctx.footprint() - ctx.workspace_footprint()) * std::mem::size_of::<f64>(),
        );
    }

    // ── 3. Non-finite input policies ─────────────────────────────────
    println!("\n== non-finite operands ==");
    let mut poisoned = a.clone();
    poisoned.set(17, 23, f64::NAN);
    let reject = ModgemmConfig { non_finite: NonFinitePolicy::Reject, ..ModgemmConfig::paper() };
    let mut c: Matrix<f64> = Matrix::zeros(n, n);
    let err = try_modgemm(
        1.0,
        Op::NoTrans,
        poisoned.view(),
        Op::NoTrans,
        b.view(),
        0.0,
        c.view_mut(),
        &reject,
    )
    .unwrap_err();
    println!("  Reject               -> {err}");
    let fallback = ModgemmConfig {
        non_finite: NonFinitePolicy::FallbackConventional,
        ..ModgemmConfig::paper()
    };
    try_modgemm(
        1.0,
        Op::NoTrans,
        poisoned.view(),
        Op::NoTrans,
        b.view(),
        0.0,
        c.view_mut(),
        &fallback,
    )
    .expect("fallback runs conventionally");
    let nans = c.as_slice().iter().filter(|x| x.is_nan()).count();
    println!(
        "  FallbackConventional -> conventional product, {nans} NaN entries (one poisoned row)"
    );

    // ── 4. Verified retry (Freivalds) ────────────────────────────────
    println!("\n== verified multiply ==");
    let cfg = ModgemmConfig {
        verify: VerifyMode::Freivalds { rounds: 8, seed: 42 },
        ..ModgemmConfig::paper()
    };
    let mut c: Matrix<f64> = Matrix::zeros(n, n);
    let t0 = std::time::Instant::now();
    try_modgemm(1.0, Op::NoTrans, a.view(), Op::NoTrans, b.view(), 0.0, c.view_mut(), &cfg)
        .expect("verified multiply");
    println!("  {n}x{n} multiply + 8-round Freivalds check in {:.1?}", t0.elapsed());
    println!("\nall failure modes handled without a single panic");
}
