//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion's surface its benches use: [`Criterion`] with
//! the builder knobs, [`BenchmarkGroup`]s with [`Throughput`] annotation,
//! `bench_function`/`bench_with_input`, the [`Bencher::iter`] timing loop,
//! [`black_box`], and [`BenchmarkId`]. Measurement is a straightforward
//! median-of-samples wall clock — adequate for the relative comparisons
//! the figure-reproduction benches make, with none of real criterion's
//! statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional rendering.
    pub fn new<P: Display>(name: impl Into<String>, parameter: P) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// A bare parameter id (`from_parameter` in real criterion).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Work-per-iteration annotation; turns times into rates in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up evaluation, then grow the batch until a sample takes
        // ≥ ~1 ms so timer resolution stays below 0.1%.
        black_box(f());
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t.elapsed().as_secs_f64() / batch as f64;
            if per_iter * batch as f64 >= 1e-3 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let budget = self.measurement.as_secs_f64();
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        let start = Instant::now();
        for _ in 0..self.samples.max(1) {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(t.elapsed().as_secs_f64() / batch as f64);
            // Cap at the measurement window so slow benches stay bounded.
            if start.elapsed().as_secs_f64() > budget {
                break;
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        self.median_ns = times[times.len() / 2] * 1e9;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(group: &str, id: &str, median_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / median_ns * 1e3 / 1.048_576)
        }
        None => String::new(),
    };
    println!("{group}/{id}: median {}{}", human_time(median_ns), rate);
}

/// A named collection of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group (accepted, unused beyond
    /// the criterion-wide setting in this subset).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let _ = n;
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        let _ = d;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            measurement: self.criterion.measurement,
            median_ns: f64::NAN,
        };
        f(&mut b);
        report(&self.name, &id.id, b.median_ns, self.throughput);
        self
    }

    /// Runs one benchmark closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report-flush point in real criterion; no-op here).
    pub fn finish(self) {}
}

/// The bench harness entry point.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement: Duration::from_secs(2),
            warm_up: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up window (accepted; warm-up here is one evaluation).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Applies command-line overrides (no-op in this subset; accepts the
    /// call so harness `main`s keep criterion's conventional shape).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            measurement: self.measurement,
            median_ns: f64::NAN,
        };
        f(&mut b);
        report("bench", id, b.median_ns, None);
        self
    }

    /// Prints the final summary (per-bench lines were already printed).
    pub fn final_summary(&mut self) {
        let _ = self.warm_up;
    }
}

/// Declares a group of benchmark functions (real criterion's shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(50));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("sum_in", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
        c.final_summary();
    }

    #[test]
    fn ids_render_name_slash_parameter() {
        let id = BenchmarkId::new("kernel", 513);
        assert_eq!(id.id, "kernel/513");
    }
}
