//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of `rand`'s API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool`, and `gen_range` over primitive
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 — the
//! same construction real `rand 0.8` uses for `SmallRng` on 64-bit
//! targets — so streams are deterministic, well distributed, and cheap.
//!
//! Only determinism *within this workspace* is promised; streams are not
//! guaranteed to match crates.io `rand` bit-for-bit.

/// Core trait of random generators: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable from raw bits (the `Standard` distribution's job in
/// real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-free) bounded u64 via Lemire reduction.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // 128-bit multiply-shift with a single widening multiply; the bias of
    // the plain variant is at most 2^-64 per draw, far below anything the
    // deterministic test workloads could observe.
    let x = rng.next_u64();
    ((x as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Through the same-width unsigned type to avoid sign
                // extension of the span for narrow signed element types.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_ranges!(
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize),
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize)
);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// Uniform draw from a primitive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used for seed expansion.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, deterministic generator (xoshiro256++), matching the
    /// construction of `rand 0.8`'s 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&x));
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(0usize..7);
            assert!(z < 7);
        }
    }

    #[test]
    fn bool_draws_both_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let heads = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((200..800).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn extreme_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
