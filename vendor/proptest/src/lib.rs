//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest's surface its test suites use: the [`proptest!`]
//! macro, range/`Just`/`prop_oneof!`/`any` strategies, `prop_assert*`
//! macros, and [`test_runner::ProptestConfig`] with a `cases` knob.
//!
//! Semantics: each test body runs `cases` times over values drawn from
//! deterministic per-test streams (seeded by the test name, perturbed by
//! the `PROPTEST_SEED` environment variable when set). Failures report the
//! drawn inputs via ordinary panics. There is **no shrinking** — a failing
//! case prints exactly the values that failed, which the small integer
//! domains used in this workspace keep readable anyway.

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;

    /// A generator of values for one `proptest!` parameter.
    ///
    /// Unlike real proptest there is no value tree: strategies produce
    /// plain values, and failing inputs are reported without shrinking.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Boxes a strategy, erasing its concrete type (used by
    /// [`crate::prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (built by
    /// [`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Types with a canonical whole-domain strategy ([`super::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's canonical distribution.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// The strategy returned by [`super::arbitrary::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Constructs the canonical whole-domain strategy for `T`.
        pub fn new() -> Self {
            Self(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategies {
        ($(($t:ty, $u:ty)),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    if span == u64::MAX {
                        return rng.next() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    range_strategies!(
        (i8, u8),
        (i16, u16),
        (i32, u32),
        (i64, u64),
        (isize, usize),
        (u8, u8),
        (u16, u16),
        (u32, u32),
        (u64, u64),
        (usize, usize)
    );

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategies!(f32, f64);
}

pub mod arbitrary {
    //! The `any` entry point.

    use super::strategy::{Any, Arbitrary};

    /// Canonical whole-domain strategy for `T` (e.g. `any::<bool>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test configuration; only `cases` is honored.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic generator (xoshiro256++ seeded via SplitMix64 from
    /// the test name and the optional `PROPTEST_SEED` env var).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds from the test name (FNV-1a), perturbed by `PROPTEST_SEED`
        /// when set so CI can replay alternate streams.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.trim().parse::<u64>() {
                    let mut e = extra;
                    h ^= splitmix64(&mut e);
                }
            }
            let mut sm = h;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            Self { s }
        }

        /// Next raw 64 bits.
        #[allow(clippy::should_implement_trait)] // matches rand-style RNG naming, not Iterator
        pub fn next(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw below `bound` (Lemire multiply-shift).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// block runs `cases` times over deterministically drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    let __ctx = format!(
                        concat!("case {} of ", stringify!($name), " with:",
                                $( "\n  ", stringify!($arg), " = {:?}", )*),
                        __case, $( &$arg ),*
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = __result {
                        eprintln!("proptest failure: {__ctx}");
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($s) ),+ ])
    };
}

pub mod prelude {
    //! One-line import for property tests: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            x in 1usize..7,
            y in -3i64..=3,
            z in 0u64..1000,
            b in any::<bool>(),
        ) {
            prop_assert!((1..7).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!(z < 1000);
            let _ = b;
        }

        #[test]
        fn oneof_draws_every_arm(v in prop_oneof![Just(0usize), Just(8), Just(usize::MAX)]) {
            prop_assert!(v == 0 || v == 8 || v == usize::MAX);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next(), b.next());
        }
    }
}
