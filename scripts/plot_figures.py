#!/usr/bin/env python3
"""Render the paper-style figures from the CSV blocks in results/*.txt.

Usage:
    python3 scripts/plot_figures.py [results_dir] [out_dir]

Each experiment driver prints an aligned table followed by a `-- csv --`
block; this script extracts the CSV and produces one PNG per figure,
styled after the paper's plots (normalized-time curves, miss-ratio
curves, padding staircases). Requires matplotlib.
"""

import csv
import io
import pathlib
import sys


def read_csv_blocks(path: pathlib.Path):
    """Returns the list of CSV blocks (as lists of dicts) in a results file."""
    blocks, current = [], []
    in_csv = False
    for line in path.read_text().splitlines():
        if line.strip() == "-- csv --":
            in_csv = True
            current = []
            continue
        if in_csv:
            if line and (line[0].isdigit() or ("," in line and not current)):
                current.append(line)
            else:
                if current:
                    blocks.append(current)
                in_csv = False
    if in_csv and current:
        blocks.append(current)
    out = []
    for block in blocks:
        reader = csv.DictReader(io.StringIO("\n".join(block)))
        out.append(list(reader))
    return out


def main():
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    outdir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "results/plots")
    outdir.mkdir(parents=True, exist_ok=True)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    def save(fig, name):
        fig.tight_layout()
        fig.savefig(outdir / name, dpi = 150)
        plt.close(fig)
        print(f"wrote {outdir / name}")

    # Figure 2: padding vs n.
    f = results / "fig2_padding.txt"
    if f.exists():
        rows = read_csv_blocks(f)[0]
        n = [int(r["n"]) for r in rows]
        fig, ax = plt.subplots(figsize=(7, 4.5))
        ax.plot(n, n, label="original n", lw=1, color="gray")
        ax.plot(n, [int(r["padded_dynamic"]) for r in rows], label="padded (dynamic tile)")
        ax.plot(n, [int(r["padded_fixed32"]) for r in rows], label="padded (fixed 32)")
        ax.plot(n, [int(r["tile"]) for r in rows], label="chosen tile", ls="--")
        ax.set(xlabel="matrix size n", ylabel="elements", title="Figure 2: padding vs matrix size")
        ax.legend()
        save(fig, "fig2_padding.png")

    # Figures 5/6: normalized execution time.
    f = results / "fig5_headline.txt"
    if f.exists():
        rows = read_csv_blocks(f)[0]
        n = [int(r["n"]) for r in rows]
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for col, label in [
            ("modgemm/dgefmm", "MODGEMM / DGEFMM"),
            ("dgemmw/dgefmm", "DGEMMW / DGEFMM"),
            ("bailey/dgefmm", "Bailey / DGEFMM"),
            ("conv/dgefmm", "conventional / DGEFMM"),
        ]:
            if col in rows[0]:
                ax.plot(n, [float(r[col]) for r in rows], marker=".", label=label)
        ax.axhline(1.0, color="gray", lw=1)
        ax.set(xlabel="matrix size n", ylabel="time / DGEFMM",
               title="Figures 5/6: normalized execution time")
        ax.legend()
        save(fig, "fig56_normalized.png")

    # Figure 7: conversion share.
    f = results / "fig7_conversion.txt"
    if f.exists():
        rows = read_csv_blocks(f)[0]
        fig, ax = plt.subplots(figsize=(7, 4.5))
        ax.plot([int(r["n"]) for r in rows], [float(r["conversion_pct"]) for r in rows], marker=".")
        ax.set(xlabel="matrix size n", ylabel="conversion % of total",
               title="Figure 7: Morton conversion share", ylim=(0, None))
        save(fig, "fig7_conversion.png")

    # Figure 8: no-conversion ratio.
    f = results / "fig8_noconv.txt"
    if f.exists():
        rows = read_csv_blocks(f)[0]
        n = [int(r["n"]) for r in rows]
        fig, ax = plt.subplots(figsize=(7, 4.5))
        ax.plot(n, [float(r["noconv/dgefmm"]) for r in rows], marker=".", label="MODGEMM (no conversion)")
        ax.plot(n, [float(r["conv/dgefmm"]) for r in rows], marker=".", label="MODGEMM (with conversion)")
        ax.axhline(1.0, color="gray", lw=1)
        ax.set(xlabel="matrix size n", ylabel="time / DGEFMM",
               title="Figure 8: MODGEMM without conversion")
        ax.legend()
        save(fig, "fig8_noconv.png")

    # Figure 9: miss ratios.
    f = results / "fig9_cachesim.txt"
    if f.exists():
        rows = read_csv_blocks(f)[0]
        n = [int(r["n"]) for r in rows]
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for col, label in [
            ("modgemm_miss_pct", "MODGEMM"),
            ("dgefmm_miss_pct", "DGEFMM"),
            ("dgemmw_miss_pct", "DGEMMW"),
            ("conv_miss_pct", "conventional"),
        ]:
            if col in rows[0]:
                ax.plot(n, [float(r[col]) for r in rows], marker=".", label=label)
        ax.set(xlabel="matrix size n", ylabel="miss ratio (%)",
               title="Figure 9: 16KB direct-mapped miss ratios", ylim=(0, None))
        ax.legend()
        save(fig, "fig9_missratio.png")

    print("done")


if __name__ == "__main__":
    main()
